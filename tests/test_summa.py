"""Tests for sparse SUMMA (`repro.sparse.summa`): the distributed SpGEMM
over the simulated grid must equal the local product of the gathered
matrices, for every grid size PASTIS supports and on both the generic and
the numeric kernel paths."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mpisim.comm import run_spmd
from repro.mpisim.grid import ProcessGrid
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.distmat import DistSparseMatrix
from repro.sparse.semiring import (
    ARITHMETIC,
    COUNTING,
    MIN_PLUS,
    Semiring,
)
from repro.sparse.spgemm import spgemm_hash
from repro.sparse.summa import summa

#: Arithmetic without a numeric spec — forces the generic object path so
#: both SUMMA code paths are exercised with comparable results.
GENERIC_ARITHMETIC = Semiring(
    "arithmetic_generic", lambda a, b: a + b, lambda a, b: a * b, 0
)


def _random_coo(m, n, density, seed) -> COOMatrix:
    mat = sp.random(m, n, density=density, random_state=seed, format="coo")
    mat.data[:] = np.random.default_rng(seed).integers(1, 9, len(mat.data))
    return COOMatrix.from_scipy(mat)


def _summa_product(nranks: int, a: COOMatrix, b: COOMatrix,
                   semiring: Semiring) -> COOMatrix:
    """Distribute ``a``/``b`` over the grid (each rank contributing an
    interleaved slice of the triples), run SUMMA, gather on rank 0."""

    def fn(comm):
        grid = ProcessGrid.create(comm)
        mine = slice(comm.rank, None, comm.size)
        da = DistSparseMatrix.distribute(
            grid, a.nrows, a.ncols, a.rows[mine], a.cols[mine],
            a.vals[mine],
        )
        db = DistSparseMatrix.distribute(
            grid, b.nrows, b.ncols, b.rows[mine], b.cols[mine],
            b.vals[mine],
        )
        c = summa(da, db, semiring)
        assert c.nrows == a.nrows and c.ncols == b.ncols
        return c.gather_global()

    return run_spmd(nranks, fn)[0]


def _local_reference(a: COOMatrix, b: COOMatrix,
                     semiring: Semiring) -> dict:
    ref = spgemm_hash(CSRMatrix.from_coo(a), CSRMatrix.from_coo(b),
                      semiring)
    return {k: float(v) for k, v in ref.to_dict().items()}


class TestSummaEqualsLocal:
    @pytest.mark.parametrize("nranks", [1, 4, 9])
    @pytest.mark.parametrize(
        "semiring",
        [ARITHMETIC, MIN_PLUS, COUNTING, GENERIC_ARITHMETIC],
        ids=lambda s: s.name,
    )
    def test_square(self, nranks, semiring):
        a = _random_coo(14, 14, 0.15, 3)
        b = _random_coo(14, 14, 0.15, 4)
        got = _summa_product(nranks, a, b, semiring)
        assert {k: float(v) for k, v in got.to_dict().items()} == (
            _local_reference(a, b, semiring)
        )

    @pytest.mark.parametrize("nranks", [1, 4, 9])
    def test_rectangular_uneven_blocks(self, nranks):
        # dimensions that do not divide evenly by the grid side
        a = _random_coo(10, 7, 0.3, 11)
        b = _random_coo(7, 13, 0.3, 12)
        got = _summa_product(nranks, a, b, ARITHMETIC)
        assert {k: float(v) for k, v in got.to_dict().items()} == (
            _local_reference(a, b, ARITHMETIC)
        )

    @pytest.mark.parametrize("nranks", [1, 4, 9])
    def test_empty_operand(self, nranks):
        a = COOMatrix.empty(8, 6)
        b = _random_coo(6, 8, 0.3, 5)
        got = _summa_product(nranks, a, b, ARITHMETIC)
        assert got.nnz == 0
        assert got.shape == (8, 8)

    def test_numeric_path_preserves_dtype(self):
        """The typed value arrays must survive distribute -> SUMMA ->
        gather: object arrays anywhere would silently disable the fast
        path."""
        a = _random_coo(12, 12, 0.2, 7)
        got = _summa_product(4, a, a, ARITHMETIC)
        assert got.vals.dtype != object

    def test_distribute_with_empty_rank_preserves_dtype(self):
        """A rank contributing zero triples must not promote the other
        ranks' value dtype (an empty float64 in the alltoall would)."""

        def fn(comm):
            grid = ProcessGrid.create(comm)
            if comm.rank == 0:
                rows = np.array([0, 1, 5], dtype=np.int64)
                cols = np.array([0, 3, 5], dtype=np.int64)
                vals = np.array([1, 2, 3], dtype=np.int64)
            else:
                rows = np.empty(0, dtype=np.int64)
                cols = np.empty(0, dtype=np.int64)
                vals = np.empty(0, dtype=np.int64)
            m = DistSparseMatrix.distribute(grid, 6, 6, rows, cols, vals)
            return str(m.local.vals.dtype)

        assert set(run_spmd(4, fn)) == {"int64"}

    def test_generic_path_still_object(self):
        a = _random_coo(12, 12, 0.2, 7)
        got = _summa_product(4, a, a, GENERIC_ARITHMETIC)
        # generic kernels emit object values; results above prove they
        # are numerically identical to the fast path
        assert {k: float(v) for k, v in got.to_dict().items()} == (
            {k: float(v)
             for k, v in _summa_product(4, a, a, ARITHMETIC)
             .to_dict().items()}
        )


class TestSummaValidation:
    def test_dimension_mismatch(self):
        def fn(comm):
            grid = ProcessGrid.create(comm)
            a = _random_coo(6, 5, 0.3, 1)
            b = _random_coo(6, 5, 0.3, 2)
            da = DistSparseMatrix.distribute(
                grid, 6, 5, a.rows, a.cols, a.vals
            )
            db = DistSparseMatrix.distribute(
                grid, 6, 5, b.rows, b.cols, b.vals
            )
            with pytest.raises(ValueError):
                summa(da, db, ARITHMETIC)
            return True

        assert all(run_spmd(1, fn))
