"""Tests for the whole-program SPMD verifier
(:mod:`repro.analysis.verify` and its substrate modules).

The backbone is seeded faults the per-file lint pass *provably misses*:
every interprocedural fixture is asserted to lint clean first, then to
be caught by the verifier — that delta is the tool's reason to exist.
The rest covers the substrate (project index, symbol resolution, call
graph, taint laundering), the pragma/baseline suppression surfaces, the
shared JSON schema and exit-code contract, and the two whole-repo
gates: the shipped tree verifies clean, and the committed baseline file
is valid and empty.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.dataflow import (
    COLLECTIVE_OPS,
    RECV_OPS,
    SEND_OPS,
    RankTaint,
)
from repro.analysis.lint import lint_sources
from repro.analysis.report import (
    BASELINE_SCHEMA,
    FINDING_CODES,
    SCHEMA,
    Finding,
    load_baseline,
)
from repro.analysis.schedule import ScheduleAnalysis
from repro.analysis.verify import (
    main as verify_main,
    verify_paths,
    verify_source,
    verify_sources,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def src(text: str) -> str:
    return textwrap.dedent(text)


def codes(findings) -> list[str]:
    return [f.code for f in findings]


def build(named):
    index = ProjectIndex.build_from_sources(named)
    graph = CallGraph(index)
    return index, graph, RankTaint(index, graph)


# ---------------------------------------------------------------------------
# seeded interprocedural faults: lint must miss, verifier must catch
# ---------------------------------------------------------------------------

ONE_DEEP = src("""
    def helper(comm):
        comm.barrier()

    def body(comm):
        if comm.rank == 0:
            helper(comm)
""")

TWO_DEEP = src("""
    def inner(comm):
        comm.bcast(None, root=0)

    def mid(comm):
        inner(comm)

    def body(comm):
        if comm.rank == 0:
            mid(comm)
""")

UNMATCHED_2DEEP = [
    ("repro/core/proto.py", src("""
        ORPHAN_TAG = 91

        def fire(comm, peer):
            comm.send(b"x", peer, tag=ORPHAN_TAG)
    """)),
    ("repro/core/x.py", src("""
        from .proto import fire

        def mid(comm):
            fire(comm, 1)

        def body(comm):
            mid(comm)
            comm.barrier()
    """)),
]


class TestCatchesWhatLintMisses:
    def test_divergent_collective_one_helper_deep(self):
        named = [("repro/core/x.py", ONE_DEEP)]
        assert lint_sources(named) == []          # provably invisible
        out = verify_sources(named)
        assert codes(out) == ["rank-divergent-collective"]
        assert out[0].line == 6                   # at the branch
        assert "barrier" in out[0].message

    def test_divergent_collective_two_helpers_deep(self):
        named = [("repro/core/x.py", TWO_DEEP)]
        assert lint_sources(named) == []
        out = verify_sources(named)
        assert codes(out) == ["rank-divergent-collective"]
        assert "bcast" in out[0].message

    def test_taint_returned_through_helper(self):
        # the branch test itself is laundered through a helper's return
        named = [("repro/core/x.py", src("""
            def leader(comm):
                return comm.rank == 0

            def body(comm):
                if leader(comm):
                    comm.barrier()
        """))]
        assert lint_sources(named) == []
        assert codes(verify_sources(named)) == [
            "rank-divergent-collective"
        ]

    def test_taint_through_helper_parameter(self):
        # rank enters a helper via its parameter and guards a collective
        named = [("repro/core/x.py", src("""
            def guarded(comm, me):
                if me == 0:
                    comm.barrier()

            def body(comm):
                guarded(comm, comm.rank)
        """))]
        assert lint_sources(named) == []
        assert codes(verify_sources(named)) == [
            "rank-divergent-collective"
        ]

    def test_unmatched_send_two_helpers_and_a_module_away(self):
        assert lint_sources(UNMATCHED_2DEEP) == []
        out = verify_sources(UNMATCHED_2DEEP)
        assert codes(out) == ["unmatched-send"]
        assert out[0].path == "repro/core/proto.py"
        assert "ORPHAN_TAG" in out[0].message

    def test_rank_bounded_loop_with_collective(self):
        named = [("repro/core/x.py", src("""
            def body(comm):
                for _ in range(comm.rank):
                    comm.barrier()
        """))]
        assert lint_sources(named) == []
        assert codes(verify_sources(named)) == [
            "rank-divergent-collective"
        ]


# ---------------------------------------------------------------------------
# precision: what the verifier must NOT flag
# ---------------------------------------------------------------------------


class TestPrecision:
    def test_symmetric_arms_pass(self):
        # both arms run the same collective sequence (through different
        # helpers): rank-dependent control, uniform schedule
        out = verify_source(src("""
            def a(comm):
                comm.barrier()

            def b(comm):
                comm.barrier()

            def body(comm):
                if comm.rank == 0:
                    a(comm)
                else:
                    b(comm)
        """))
        assert out == []

    def test_collective_results_launder_taint(self):
        # allgather/bcast/allreduce results are uniform by construction,
        # so branching on them is fine even though the argument is
        # rank-local (the per-file lint false-positives here)
        out = verify_source(src("""
            def body(comm):
                counts = comm.allgather(comm.rank)
                total = comm.allreduce(comm.rank, max)
                if max(counts) > 2 and total > 1:
                    comm.barrier()
        """))
        assert out == []

    def test_attribute_access_does_not_launder_rank_in(self):
        # grid.q is uniform even when grid also carries grid.row — the
        # SUMMA k-loop pattern must not be flagged
        out = verify_source(src("""
            def body(grid, comm):
                q = grid.q
                for t in range(q):
                    comm.bcast(None, root=t)
                if grid.row == 0:
                    pass
        """))
        assert out == []

    def test_rank_guarded_p2p_is_not_divergence(self):
        # asymmetric send/recv under a rank branch is how protocols are
        # written; only *collective* asymmetry is divergence
        out = verify_source(src("""
            def body(comm):
                if comm.rank == 0:
                    comm.send(b"x", 1, tag=3)
                else:
                    comm.recv(source=0, tag=3)
                comm.barrier()
        """))
        assert out == []

    def test_matched_cross_module_pair_passes(self):
        out = verify_sources([
            ("repro/core/proto.py", src("""
                PAIR_TAG = 91

                def fire(comm, peer):
                    comm.send(b"x", peer, tag=PAIR_TAG)

                def take(comm, peer):
                    return comm.recv(source=peer, tag=PAIR_TAG)
            """)),
            ("repro/core/x.py", src("""
                from .proto import fire, take

                def body(comm):
                    if comm.rank == 0:
                        fire(comm, 1)
                    else:
                        take(comm, 0)
            """)),
        ])
        assert out == []

    def test_dynamic_tag_matches_anything(self):
        # a computed tag cannot be checked statically: under-report
        out = verify_source(src("""
            def body(comm, job):
                comm.send(b"x", 1, tag=job * 2)
        """))
        assert out == []


class TestUnmatchedRecvAndSuppression:
    def test_unmatched_recv_is_a_warning(self):
        out = verify_source(src("""
            def body(comm):
                return comm.recv(source=0, tag=44)
        """))
        assert codes(out) == ["unmatched-recv"]
        assert out[0].severity == "warning"

    def test_pragma_suppresses_verifier_finding(self):
        out = verify_source(src("""
            def helper(comm):
                comm.barrier()

            def body(comm):
                if comm.rank == 0:  # spmd: rank-divergent-ok (probe)
                    helper(comm)
        """))
        assert out == []

    def test_unmatched_send_pragma(self):
        out = verify_source(src("""
            def body(comm):
                # spmd: unmatched-send-ok (sink rank drains later)
                comm.send(b"x", 1, tag=93)
        """))
        assert out == []

    def test_stale_shared_pragma_reported_by_verify_not_lint(self):
        # rank-divergent-ok suppressing nothing: lint stays silent
        # (verify owns shared codes), verify flags it
        named = [("repro/core/x.py", "x = 1  # spmd: rank-divergent-ok\n")]
        assert lint_sources(named) == []
        out = verify_sources(named)
        assert codes(out) == ["unused-pragma"]
        assert "rank-divergent-ok" in out[0].message

    def test_used_pragma_of_either_tool_not_reported(self):
        # the pragma suppresses a *lint* finding only; verify must see
        # that usage and not call it stale
        out = verify_sources([("repro/sparse/spgemm.py", src("""
            def kernel(rows):
                for r in rows:  # spmd: hot-loop-ok (reference)
                    pass
        """))])
        assert out == []

    def test_syntax_error_reported(self):
        out = verify_source("def broken(:\n")
        assert codes(out) == ["syntax-error"]


# ---------------------------------------------------------------------------
# substrate: index, resolution, call graph, op tables
# ---------------------------------------------------------------------------


class TestSubstrate:
    def test_module_name_anchors_out_of_tree_paths(self):
        # absolute CLI arguments outside the installed tree must still
        # resolve imports: anchor at the first "repro" path component
        from repro.analysis.callgraph import _module_name
        from repro.analysis.lint import _module_name_of

        for fn in (_module_name, _module_name_of):
            assert fn("repro/core/balance.py") == "repro.core.balance"
            assert fn("repro/core/__init__.py") == "repro.core"
            assert (fn("/tmp/work/repro/demo/helpers.py")
                    == "repro.demo.helpers")

    def test_symbol_resolution_chain(self):
        index, graph, _ = build([
            ("repro/pkg/helpers.py", src("""
                def leaf(comm):
                    comm.barrier()
            """)),
            ("repro/pkg/mid.py", src("""
                from .helpers import leaf

                def relay(comm):
                    leaf(comm)
            """)),
            ("repro/main.py", src("""
                from pkg.mid import relay

                def top(comm):
                    relay(comm)
            """)),
        ])
        reach = graph.reachable(["repro.pkg.mid.relay"])
        assert "repro.pkg.helpers.leaf" in reach

    def test_method_and_nested_resolution(self):
        index, graph, _ = build([("repro/m.py", src("""
            class Widget:
                def ping(self, comm):
                    comm.barrier()

                def run(self, comm):
                    self.ping(comm)

            def outer(comm):
                def inner():
                    comm.barrier()
                inner()
        """))])
        assert ("repro.m.Widget.ping"
                in graph.reachable(["repro.m.Widget.run"]))
        assert ("repro.m.outer.<locals>.inner"
                in graph.reachable(["repro.m.outer"]))

    def test_run_spmd_argument_is_an_entry(self):
        named = [("repro/m.py", src("""
            from repro.mpisim.backend import run_spmd

            def body(comm):
                comm.barrier()

            def launch():
                return run_spmd(4, body)
        """))]
        index, graph, taint = build(named)
        assert "repro.m.body" in graph.spmd_entries
        sched = ScheduleAnalysis(index, graph, taint)
        assert "repro.m.body" in sched.entry_points

    def test_constant_resolution_identity(self):
        index, _, _ = build([
            ("repro/a.py", "STEAL_TAG = 78\n"),
            ("repro/b.py", "from .a import STEAL_TAG\n"),
        ])
        import ast as _ast
        mod_b = index.modules["repro.b"]
        expr = _ast.parse("STEAL_TAG", mode="eval").body
        assert index.resolve_int_constant(mod_b, expr) == \
            ("repro.a.STEAL_TAG", 78)

    def test_op_tables_mirror_backend(self):
        from repro.mpisim.backend import COMM_OP_KINDS

        assert COLLECTIVE_OPS == {
            op for op, kind in COMM_OP_KINDS.items()
            if kind == "collective"
        }
        assert SEND_OPS == {op for op, kind in COMM_OP_KINDS.items()
                            if kind == "send"}
        assert RECV_OPS == {op for op, kind in COMM_OP_KINDS.items()
                            if kind == "recv"}

    def test_every_finding_code_has_severity_and_tools(self):
        for code, info in FINDING_CODES.items():
            assert info.severity in ("error", "warning"), code
            assert info.tools, code


# ---------------------------------------------------------------------------
# the whole repo, the committed baseline, and the CLI contract
# ---------------------------------------------------------------------------


class TestRepoAndCli:
    def test_repo_verifies_clean(self):
        out = verify_paths()
        assert out == [], "\n".join(f.render() for f in out)

    def test_committed_baseline_is_valid_and_empty(self):
        fingerprints = load_baseline(REPO_ROOT / "spmd-baseline.json")
        assert fingerprints == set()

    def test_cli_exit_codes_and_text(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(comm):\n    comm.barrier()\n")
        assert verify_main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        bad = tmp_path / "deep.py"
        bad.write_text(ONE_DEEP)
        assert verify_main([str(bad)]) == 1
        assert "rank-divergent-collective" in capsys.readouterr().out

    def test_cli_json_document(self, tmp_path, capsys):
        bad = tmp_path / "deep.py"
        bad.write_text(ONE_DEEP)
        out_file = tmp_path / "findings.json"
        rc = verify_main([str(bad), "--format", "json",
                          "--output", str(out_file)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == SCHEMA
        assert doc["tool"] == "verify"
        assert doc["counts"]["error"] == 1
        entry = doc["findings"][0]
        assert entry["code"] == "rank-divergent-collective"
        assert entry["severity"] == "error"
        assert entry["fingerprint"]
        # the artifact file carries the identical document
        assert json.loads(out_file.read_text()) == doc

    def test_baseline_accepts_old_flags_new(self, tmp_path, capsys):
        target = tmp_path / "deep.py"
        target.write_text(ONE_DEEP)
        baseline = tmp_path / "baseline.json"
        assert verify_main([str(target), "--write-baseline",
                            str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        assert doc["schema"] == BASELINE_SCHEMA
        assert len(doc["findings"]) == 1
        capsys.readouterr()

        # the baselined finding no longer fails the run
        assert verify_main([str(target), "--baseline",
                            str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

        # fingerprints are line-insensitive: shifting the file keeps
        # the old finding suppressed
        target.write_text("# a new leading comment\n" + ONE_DEEP)
        assert verify_main([str(target), "--baseline",
                            str(baseline)]) == 0
        capsys.readouterr()

        # ... but a genuinely new finding still fails
        target.write_text(ONE_DEEP + src("""
            def extra(comm):
                comm.send(b"x", 1, tag=93)
                comm.barrier()
        """))
        assert verify_main([str(target), "--baseline",
                            str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "unmatched-send" in out
        assert "rank-divergent-collective" not in out

    def test_unusable_baseline_exits_2(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def f(comm):\n    comm.barrier()\n")
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert verify_main([str(target), "--baseline",
                            str(bogus)]) == 2

    def test_fingerprint_normalises_line_references(self):
        a = Finding("repro/x.py", 5, "c", "branch at line 5 diverges")
        b = Finding("repro/x.py", 9, "c", "branch at line 9 diverges")
        assert a.fingerprint() == b.fingerprint()
