"""End-to-end integration tests reproducing the paper's accuracy trends
(Fig. 17 and Table II) on the synthetic SCOPe stand-in.

These run the real pipeline — overlap, alignment, filtering, clustering,
metrics — and assert the *relationships* the paper reports, not absolute
numbers.
"""

import numpy as np
import pytest

from repro.baselines.last import LastConfig, last_search
from repro.baselines.mmseqs import MMseqsConfig, mmseqs_search
from repro.bio.generate import scope_like
from repro.cluster.components import connected_components
from repro.cluster.mcl import markov_clustering
from repro.cluster.metrics import weighted_precision_recall
from repro.core.config import PastisConfig
from repro.core.pipeline import pastis_pipeline
from repro.core.distributed import run_pastis_distributed


@pytest.fixture(scope="module")
def hard_data():
    """High-divergence families under shared super-family ancestors, so the
    tools differentiate: exact k-mers miss true pairs (substitutes recover
    them) and sibling families can be falsely linked (precision can
    drop)."""
    return scope_like(
        n_families=9,
        members_per_family=(4, 6),
        length_range=(60, 110),
        divergence=0.45,
        indel_rate=0.02,
        seed=101,
        families_per_superfamily=3,
        superfamily_divergence=0.35,
    )


def _run_pastis(data, subs, k=4, mode="xd", weight="ani"):
    cfg = PastisConfig(k=k, substitutes=subs, align_mode=mode, weight=weight)
    return pastis_pipeline(data.store, cfg)


class TestFig17Trends:
    def test_substitutes_raise_recall(self, hard_data):
        """The Fig. 17 headline: more substitute k-mers -> higher recall
        (after MCL clustering)."""
        recalls = []
        for subs in (0, 8):
            g = _run_pastis(hard_data, subs)
            mcl = markov_clustering(g)
            pr = weighted_precision_recall(mcl.labels, hard_data.labels)
            recalls.append(pr.recall)
        assert recalls[1] >= recalls[0]

    def test_substitutes_increase_alignments(self, hard_data):
        g0 = _run_pastis(hard_data, 0)
        g8 = _run_pastis(hard_data, 8)
        assert g8.meta["aligned_pairs"] > g0.meta["aligned_pairs"]

    def test_precision_recall_reasonable(self, hard_data):
        g = _run_pastis(hard_data, 8)
        mcl = markov_clustering(g)
        pr = weighted_precision_recall(mcl.labels, hard_data.labels)
        assert pr.precision > 0.6
        assert pr.recall > 0.4

    def test_ns_weighting_viable(self, hard_data):
        """Paper: "NS proves to be viable compared to the ANI score"
        (especially with XD) — its clustered quality is close."""
        g_ani = _run_pastis(hard_data, 8, weight="ani")
        g_ns = _run_pastis(hard_data, 8, weight="ns")
        pr_ani = weighted_precision_recall(
            markov_clustering(g_ani).labels, hard_data.labels
        )
        pr_ns = weighted_precision_recall(
            markov_clustering(g_ns).labels, hard_data.labels
        )
        assert pr_ns.f1 > 0.5 * pr_ani.f1

    def test_ck_threshold_small_recall_loss(self, hard_data):
        """Paper: the CK threshold costs only a few points of recall while
        removing many alignments.  On this small synthetic set (sequences
        ~20x shorter than Metaclust's, hence far fewer shared k-mers per
        true pair) we use t=1 — the paper's exact-k-mer setting — rather
        than t=3."""
        g = _run_pastis(hard_data, 8)
        cfg_ck = PastisConfig(k=4, substitutes=8, common_kmer_threshold=1)
        g_ck = pastis_pipeline(hard_data.store, cfg_ck)
        pr = weighted_precision_recall(
            markov_clustering(g).labels, hard_data.labels
        )
        pr_ck = weighted_precision_recall(
            markov_clustering(g_ck).labels, hard_data.labels
        )
        assert g_ck.meta["aligned_pairs"] < g.meta["aligned_pairs"]
        # a bounded recall cost (the paper measures 2-3 points on
        # Metaclust-scale sequences; short synthetic proteins lose more
        # because every true pair shares few k-mers to begin with)
        assert pr_ck.recall >= pr.recall - 0.25
        assert pr_ck.precision >= pr.precision - 0.05

    def test_mmseqs_and_last_comparable(self, hard_data):
        """All three tools should land in a comparable quality band on the
        same data (the paper's Fig. 17 cloud)."""
        g_p = _run_pastis(hard_data, 8)
        g_m = mmseqs_search(hard_data.store,
                            MMseqsConfig(k=4, sensitivity=5.7))
        g_l = last_search(
            hard_data.store,
            LastConfig(max_initial_matches=100, min_seed_length=4),
        )
        f1s = {}
        for name, g in (("pastis", g_p), ("mmseqs", g_m), ("last", g_l)):
            mcl = markov_clustering(g)
            f1s[name] = weighted_precision_recall(
                mcl.labels, hard_data.labels
            ).f1
        assert all(f > 0.3 for f in f1s.values()), f1s


class TestTable2Trends:
    """Connected components used directly as protein families."""

    def test_cc_recall_grows_with_substitutes(self, hard_data):
        recalls = []
        for subs in (0, 8):
            g = _run_pastis(hard_data, subs)
            labels, _ = connected_components(g)
            pr = weighted_precision_recall(labels, hard_data.labels)
            recalls.append(pr.recall)
        assert recalls[1] >= recalls[0]

    def test_cc_precision_drops_with_substitutes(self, hard_data):
        """Table II: "using substitute k-mers without clustering causes
        substantial precision penalty" — components coalesce."""
        precisions = []
        ncomps = []
        for subs in (0, 8):
            g = _run_pastis(hard_data, subs)
            labels, ncc = connected_components(g)
            pr = weighted_precision_recall(labels, hard_data.labels)
            precisions.append(pr.precision)
            ncomps.append(ncc)
        assert precisions[1] <= precisions[0]
        assert ncomps[1] <= ncomps[0]

    def test_clustering_beats_cc_on_precision_with_substitutes(
        self, hard_data
    ):
        """Table II conclusion: "clustering is indispensable when
        substitute k-mers are used"."""
        g = _run_pastis(hard_data, 8)
        cc_labels, _ = connected_components(g)
        mcl_labels = markov_clustering(g).labels
        pr_cc = weighted_precision_recall(cc_labels, hard_data.labels)
        pr_mcl = weighted_precision_recall(mcl_labels, hard_data.labels)
        assert pr_mcl.precision >= pr_cc.precision


class TestDistributedEndToEnd:
    def test_distributed_clustered_quality_equals_single(self, hard_data):
        cfg = PastisConfig(k=4, substitutes=4)
        g1 = pastis_pipeline(hard_data.store, cfg)
        g2 = run_pastis_distributed(hard_data.store, cfg, nranks=4)
        pr1 = weighted_precision_recall(
            markov_clustering(g1).labels, hard_data.labels
        )
        pr2 = weighted_precision_recall(
            markov_clustering(g2).labels, hard_data.labels
        )
        assert pr1.precision == pr2.precision
        assert pr1.recall == pr2.recall
