"""Shared fixtures for the PASTIS reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bio.generate import scope_like
from repro.bio.sequences import SequenceStore


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_store() -> SequenceStore:
    """A tiny deterministic store with known shared k-mers."""
    return SequenceStore(
        [
            "AVGDMIKRAVG",   # shares AVG (x2) and DMI with seq1
            "AVGPDMIWKL",
            "WWWWYYYY",      # unrelated
            "AVGDMIKRAV",    # near-duplicate of seq0
        ],
        ids=["s0", "s1", "s2", "s3"],
    )


@pytest.fixture
def family_data():
    """Small SCOPe-like dataset with ground truth."""
    return scope_like(
        n_families=4,
        members_per_family=(3, 4),
        length_range=(50, 80),
        divergence=0.2,
        seed=77,
    )
