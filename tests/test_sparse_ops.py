"""Tests for structural sparse operations (triu, symmetrize, prune, ...)."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix
from repro.sparse.ops import (
    diagonal_mask,
    prune,
    symmetrize,
    tril,
    triu,
)


@pytest.fixture
def mat():
    # 4x4 with entries above, on, and below the diagonal
    return COOMatrix(
        4, 4, [0, 1, 2, 3, 0], [2, 1, 0, 3, 0], [1, 2, 3, 4, 5]
    )


class TestTriangles:
    def test_triu_strict(self, mat):
        u = triu(mat, k=1)
        assert u.to_dict() == {(0, 2): 1}

    def test_triu_with_diagonal(self, mat):
        u = triu(mat, k=0)
        assert set(u.to_dict()) == {(0, 2), (1, 1), (3, 3), (0, 0)}

    def test_tril(self, mat):
        l = tril(mat, k=-1)
        assert l.to_dict() == {(2, 0): 3}

    def test_triu_tril_partition(self, mat):
        assert triu(mat, 1).nnz + tril(mat, 0).nnz == mat.nnz


class TestSymmetrize:
    def test_union_pattern(self):
        m = COOMatrix(3, 3, [0, 1], [1, 2], [5, 7])
        s = symmetrize(m)
        assert set(s.to_dict()) == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_merge_prefers_first(self):
        m = COOMatrix(2, 2, [0, 1], [1, 0], ["fwd", "bwd"])
        s = symmetrize(m)
        d = s.to_dict()
        # original entries come first in the merge
        assert d[(0, 1)] == "fwd"
        assert d[(1, 0)] == "bwd"

    def test_custom_merge(self):
        m = COOMatrix(2, 2, [0, 1], [1, 0], [3, 9])
        s = symmetrize(m, merge=max)
        assert s.to_dict() == {(0, 1): 9, (1, 0): 9}

    def test_result_is_symmetric(self):
        rng = np.random.default_rng(0)
        m = COOMatrix(6, 6, rng.integers(0, 6, 10), rng.integers(0, 6, 10),
                      rng.integers(1, 5, 10)).sum_duplicates(max)
        s = symmetrize(m, merge=max)
        d = s.to_dict()
        for (r, c), v in d.items():
            assert d[(c, r)] == v


class TestPruneAndMask:
    def test_prune(self, mat):
        p = prune(mat, lambda v: v >= 3)
        assert set(p.to_dict().values()) == {3, 4, 5}

    def test_prune_all(self, mat):
        assert prune(mat, lambda v: False).nnz == 0

    def test_diagonal_mask_removes(self, mat):
        m = diagonal_mask(mat)
        assert all(r != c for r, c, _ in m)

    def test_diagonal_mask_keeps(self, mat):
        m = diagonal_mask(mat, keep_diagonal=True)
        assert all(r == c for r, c, _ in m)
        assert m.nnz == 3
