"""Tests for the overlapped remote-sequence exchange
(`repro.core.exchange`): plan computation, full round-trip delivery, and
the empty-payload edge cases that appear when ranks own no sequences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bio.fasta import chunk_boundaries, read_fasta_chunk
from repro.bio.generate import scope_like
from repro.bio.sequences import DistributedIndex, SequenceStore
from repro.core.distributed import store_to_fasta_bytes
from repro.core.exchange import needed_ranges, start_exchange
from repro.mpisim.comm import run_spmd
from repro.mpisim.grid import ProcessGrid, block_ranges


@pytest.fixture(scope="module")
def store() -> SequenceStore:
    return scope_like(
        n_families=3, members_per_family=(3, 3), length_range=(30, 50),
        divergence=0.2, seed=9,
    ).store


def _spmd_exchange(nranks: int, store: SequenceStore):
    """Run parse + prefix sums + exchange on ``nranks`` ranks; returns the
    per-rank ``(cache, owned_range)``."""
    fasta = store_to_fasta_bytes(store)

    def fn(comm):
        grid = ProcessGrid.create(comm)
        s, e = chunk_boundaries(len(fasta), comm.size)[comm.rank]
        local = SequenceStore.from_records(read_fasta_chunk(fasta, s, e))
        counts = comm.allgather(len(local))
        index = DistributedIndex.from_counts(counts)
        ex = start_exchange(comm, grid, index, local, index.total)
        cache = ex.finish()
        return cache, index.rank_range(comm.rank)

    return run_spmd(nranks, fn)


class TestNeededRanges:
    def test_diagonal_rank_has_single_range(self):
        def fn(comm):
            grid = ProcessGrid.create(comm)
            return needed_ranges(grid, comm.rank, 90)

        out = run_spmd(9, fn)
        q = 3
        ranges = block_ranges(90, q)
        for rank in range(9):
            pi, pj = divmod(rank, q)
            expected = (
                [ranges[pi]] if pi == pj
                else sorted([ranges[pi], ranges[pj]])
            )
            assert out[rank] == expected

    def test_ranges_cover_row_and_col_block(self):
        def fn(comm):
            grid = ProcessGrid.create(comm)
            return needed_ranges(grid, comm.rank, 50)

        out = run_spmd(4, fn)
        ranges = block_ranges(50, 2)
        for rank, got in enumerate(out):
            pi, pj = divmod(rank, 2)
            covered = set()
            for lo, hi in got:
                covered.update(range(lo, hi))
            want = set(range(*ranges[pi])) | set(range(*ranges[pj]))
            assert covered == want


class TestRoundTrip:
    @pytest.mark.parametrize("nranks", [1, 4, 9])
    def test_delivers_exactly_needed_content(self, store, nranks):
        results = _spmd_exchange(nranks, store)
        n = len(store)
        # global reference encodings from the undistributed store
        for rank, (cache, owned) in enumerate(results):
            grid_q = int(np.sqrt(nranks))
            pi, pj = divmod(rank, grid_q)
            ranges = block_ranges(n, grid_q)
            needed = set(range(*ranges[pi])) | set(range(*ranges[pj]))
            # everything needed (plus everything owned) is in the cache
            assert needed | set(range(*owned)) == set(cache)
            for gid in needed:
                np.testing.assert_array_equal(
                    cache[gid], store.encoded(gid),
                    err_msg=f"rank {rank} got wrong bytes for seq {gid}",
                )

    def test_finish_is_idempotent(self, store):
        fasta = store_to_fasta_bytes(store)

        def fn(comm):
            grid = ProcessGrid.create(comm)
            s, e = chunk_boundaries(len(fasta), comm.size)[comm.rank]
            local = SequenceStore.from_records(
                read_fasta_chunk(fasta, s, e)
            )
            counts = comm.allgather(len(local))
            index = DistributedIndex.from_counts(counts)
            ex = start_exchange(comm, grid, index, local, index.total)
            first = dict(ex.finish())
            second = ex.finish()
            assert second == first
            assert ex.recv_requests == []
            return True

        assert all(run_spmd(4, fn))


class TestEmptyPayloads:
    def test_more_ranks_than_sequences(self):
        """With 2 sequences on 9 ranks most ranks own nothing: their sends
        are skipped entirely and the exchange must still complete with
        every rank holding the full needed range."""
        tiny = SequenceStore(["AVGDMIKRAVG", "AVGPDMIWKL"], ids=["a", "b"])
        results = _spmd_exchange(9, tiny)
        for rank, (cache, owned) in enumerate(results):
            pi, pj = divmod(rank, 3)
            ranges = block_ranges(2, 3)
            needed = set(range(*ranges[pi])) | set(range(*ranges[pj]))
            assert needed <= set(cache)
            for gid in needed:
                np.testing.assert_array_equal(cache[gid],
                                              tiny.encoded(gid))

    def test_single_rank_never_communicates(self, store):
        results = _spmd_exchange(1, store)
        cache, owned = results[0]
        assert owned == (0, len(store))
        assert set(cache) == set(range(len(store)))

    def test_wait_seconds_accumulates(self, store):
        fasta = store_to_fasta_bytes(store)

        def fn(comm):
            grid = ProcessGrid.create(comm)
            s, e = chunk_boundaries(len(fasta), comm.size)[comm.rank]
            local = SequenceStore.from_records(
                read_fasta_chunk(fasta, s, e)
            )
            counts = comm.allgather(len(local))
            index = DistributedIndex.from_counts(counts)
            ex = start_exchange(comm, grid, index, local, index.total)
            assert ex.wait_seconds == 0.0
            ex.finish()
            return ex.wait_seconds

        out = run_spmd(4, fn)
        assert all(w >= 0.0 for w in out)
