"""Differential kernel-conformance harness for the SpGEMM kernel registry.

A library, not a test module (no ``test_`` prefix — pytest never collects
it): ``tests/test_kernelcheck.py`` drives it, the way comm backends drive
``test_comm_backends.py``.  The harness is registry-driven — it asks
:mod:`repro.sparse.kernels` what exists, so a future backend registers a
:class:`~repro.sparse.kernels.KernelSpec` and inherits the whole sweep.

Pieces
------
* :func:`corpus` — a seeded adversarial corpus of operand pairs per dtype
  combination: empty operands/rows/blocks, zero-size inner dimension,
  1×N / N×1 shapes, dense-ish blocks, ultra-sparse blocks, explicit and
  cancelling zeros, near-limit magnitudes, heavy accumulator collisions.
* :func:`assert_conforms` — one product checked against the scalar
  semiring reference (``spgemm_hash``): identical coordinates, and values
  byte-identical after casting the reference scalars to the kernel's
  output dtype (object outputs are compared scalar-by-scalar, *type
  included*).
* :func:`sweep_kernel` — corpus × semirings × dtypes for one registered
  kernel, honouring its ``covers`` predicate; returns how many products
  it actually checked so callers can assert the sweep was not vacuous.
* :func:`summa_product` — the distributed formulation: scatter the
  operands over a √p × √p grid, run SUMMA with an optional delegated
  kernel, gather the global product.  SPMD bodies live at module level so
  the ``mp`` backend can pickle them by reference.
"""

from __future__ import annotations

import numpy as np

from repro.mpisim.backend import run_spmd
from repro.mpisim.grid import ProcessGrid
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.distmat import DistSparseMatrix
from repro.sparse.kernels import get_kernel
from repro.sparse.semiring import (
    ARITHMETIC,
    COUNTING,
    MAX_TIMES,
    MIN_PLUS,
    Semiring,
)
from repro.sparse.spgemm import spgemm_hash
from repro.sparse.summa import summa

__all__ = [
    "SWEEP_SEMIRINGS",
    "SWEEP_DTYPES",
    "corpus",
    "reference_product",
    "assert_conforms",
    "assert_bitwise_equal",
    "sweep_kernel",
    "summa_product",
]

#: Semirings the sweep exercises: the two delegable ones (plus-times
#: arithmetic and pattern counting) plus two ufunc-only semirings that
#: must never delegate but still cover the numeric fast path.
SWEEP_SEMIRINGS = (ARITHMETIC, COUNTING, MIN_PLUS, MAX_TIMES)

#: Operand dtype combinations: a tuple entry means (A dtype, B dtype).
#: int32 × int64 keeps the mixed-width promotion rules honest; plain
#: int32 × int32 (covered only by the in-repo kernels) rides along via
#: the mixed pair's reverse in :func:`sweep_kernel` callers if needed.
SWEEP_DTYPES = (
    np.float64,
    np.float32,
    np.int64,
    (np.int32, np.int64),
)


def _values(rng: np.random.Generator, n: int, dtype) -> np.ndarray:
    """Adversarial values: small magnitudes including exact zeros, with
    signs when the dtype has them, halves when it is a float (exactly
    representable — cross-kernel arithmetic stays bit-exact)."""
    dt = np.dtype(dtype)
    lo = -6 if dt.kind in "if" else 0
    vals = rng.integers(lo, 7, n).astype(dt)
    if dt.kind == "f":
        vals += rng.integers(0, 2, n).astype(dt) * dt.type(0.5)
    return vals


def _random_coo(
    rng: np.random.Generator, nrows: int, ncols: int, nnz: int, dtype,
    *, skip_rows: tuple[int, ...] = (), values: np.ndarray | None = None,
) -> COOMatrix:
    """A duplicate-free random block; ``skip_rows`` forces empty rows."""
    flat = np.arange(nrows * ncols)
    if skip_rows:
        flat = flat[~np.isin(flat // ncols, skip_rows)]
    idx = rng.choice(flat, size=min(nnz, len(flat)), replace=False)
    vals = _values(rng, len(idx), dtype) if values is None else values
    return COOMatrix(nrows, ncols, idx // ncols, idx % ncols, vals)


def _dense(rng: np.random.Generator, nrows: int, ncols: int,
           dtype) -> COOMatrix:
    rows, cols = np.divmod(np.arange(nrows * ncols), ncols)
    return COOMatrix(nrows, ncols, rows, cols,
                     _values(rng, nrows * ncols, dtype))


def _big(dtype):
    """A large exact magnitude whose corpus-sized products and sums still
    cannot overflow the dtype (every kernel must agree without wrapping
    or warnings): 2^b with 2b + 4 bits inside the representable range."""
    dt = np.dtype(dtype)
    if dt.kind == "f":
        return dt.type(2.0) ** 40
    return dt.type(2 ** ((8 * dt.itemsize - 2 - 4) // 2))


def corpus(dtype=np.float64, seed: int = 0):
    """The adversarial operand corpus for one dtype combination.

    ``dtype`` is a single dtype or an ``(a_dtype, b_dtype)`` pair.
    Returns ``[(name, a: CSRMatrix, b: CSRMatrix), ...]`` with compatible
    shapes, deterministically seeded — every kernel sees the same bits.
    """
    da, db = dtype if isinstance(dtype, tuple) else (dtype, dtype)
    da, db = np.dtype(da), np.dtype(db)
    rng = np.random.default_rng(seed)
    cases: list[tuple[str, CSRMatrix, CSRMatrix]] = []

    def add(name: str, a: COOMatrix, b: COOMatrix) -> None:
        assert a.ncols == b.nrows, name
        cases.append((name, CSRMatrix.from_coo(a), CSRMatrix.from_coo(b)))

    def E(m, n, dt):
        return COOMatrix.empty(m, n, dtype=dt)

    def R(m, n, nnz, dt, **kw):
        return _random_coo(rng, m, n, nnz, dt, **kw)

    add("both_empty", E(5, 4, da), E(4, 3, db))
    add("a_empty", E(6, 8, da), R(8, 5, 12, db))
    add("b_empty", R(6, 8, 12, da), E(8, 5, db))
    add("inner_dim_zero", E(5, 0, da), E(0, 4, db))
    # a touches inner indices {0, 1} only, b rows {5, 6} only -> product
    # has the full dimensions but zero intersections
    add("disjoint_inner",
        COOMatrix(4, 8, [0, 1, 2, 3], [0, 1, 0, 1], _values(rng, 4, da)),
        COOMatrix(8, 4, [5, 6, 5, 6], [0, 1, 2, 3], _values(rng, 4, db)))
    add("one_by_n", R(1, 12, 8, da), R(12, 7, 20, db))
    add("n_by_one", R(9, 12, 20, da), R(12, 1, 6, db))
    # inner dimension 1: every a-entry meets every b-entry (outer product)
    add("outer_product", R(5, 1, 3, da), R(1, 6, 4, db))
    add("single_hit",
        COOMatrix(4, 5, [2], [3], _values(rng, 1, da)),
        COOMatrix(5, 3, [3], [1], _values(rng, 1, db)))
    add("single_miss",
        COOMatrix(4, 5, [2], [3], _values(rng, 1, da)),
        COOMatrix(5, 3, [4], [1], _values(rng, 1, db)))
    add("dense_small", _dense(rng, 6, 5, da), _dense(rng, 5, 7, db))
    add("ultra_sparse", R(200, 300, 6, da), R(300, 150, 6, db))
    eye = COOMatrix(7, 7, np.arange(7), np.arange(7),
                    np.ones(7, dtype=da))
    add("identity_left", eye, R(7, 9, 25, db))
    add("square_random", R(12, 12, 40, da), R(12, 12, 40, db))
    add("rect_tall", R(40, 3, 30, da), R(3, 25, 40, db))
    add("rect_wide", R(3, 40, 40, da), R(40, 5, 30, db))
    add("empty_rows", R(10, 8, 20, da, skip_rows=(0, 4, 9)),
        R(8, 10, 20, db, skip_rows=(1, 7)))
    # dense inner column x dense inner row: every output cell accumulates
    # the full inner dimension (maximum accumulator collisions)
    add("heavy_collision",
        COOMatrix(3, 9, np.repeat(np.arange(3), 9), np.tile(np.arange(9), 3),
                  np.ones(27, dtype=da)),
        COOMatrix(9, 3, np.repeat(np.arange(9), 3), np.tile(np.arange(3), 9),
                  _values(rng, 27, db)))
    add("all_ones",
        R(8, 8, 24, da, values=np.ones(24, dtype=da)),
        R(8, 8, 24, db, values=np.ones(24, dtype=db)))
    add("all_zeros",
        R(6, 6, 14, da, values=np.zeros(14, dtype=da)),
        R(6, 6, 14, db, values=np.zeros(14, dtype=db)))
    # one output cell receives v + (0 - v): an explicit cancellation zero
    # for signed dtypes (and a wrap-to-zero for unsigned) that delegated
    # kernels must keep stored, like the in-repo kernels do
    v = da.type(3)
    add("cancellation",
        COOMatrix(2, 2, [0, 0], [0, 1],
                  np.array([v, da.type(0) - v], dtype=da)),
        COOMatrix(2, 1, [0, 1], [0, 0], np.ones(2, dtype=db)))
    add("large_values",
        R(5, 5, 8, da, values=np.full(8, _big(da))),
        R(5, 5, 8, db, values=np.full(8, _big(db))))
    add("banded",
        COOMatrix(10, 10, np.arange(9), np.arange(1, 10),
                  _values(rng, 9, da)),
        COOMatrix(10, 10, np.arange(1, 10), np.arange(9),
                  _values(rng, 9, db)))
    return cases


def reference_product(a: CSRMatrix, b: CSRMatrix,
                      semiring: Semiring) -> COOMatrix:
    """The authoritative answer: the scalar (object-value) hash kernel,
    coordinate-sorted."""
    return spgemm_hash(a, b, semiring).sort()


def assert_conforms(got: COOMatrix, a: CSRMatrix, b: CSRMatrix,
                    semiring: Semiring, context: str = "") -> None:
    """Assert one kernel product matches the scalar semiring reference
    exactly — same coordinates, and byte-identical values once the
    reference scalars are cast into the kernel's output dtype."""
    ref = reference_product(a, b, semiring)
    got = got.sort()
    where = f" [{context}]" if context else ""
    assert got.shape == ref.shape, f"shape mismatch{where}"
    assert got.nnz == ref.nnz, (
        f"nnz {got.nnz} != reference {ref.nnz}{where}"
    )
    np.testing.assert_array_equal(got.rows, ref.rows,
                                  err_msg=f"row coords diverge{where}")
    np.testing.assert_array_equal(got.cols, ref.cols,
                                  err_msg=f"col coords diverge{where}")
    if got.vals.dtype == object:
        for k, (x, y) in enumerate(zip(got.vals, ref.vals)):
            assert type(x) is type(y), (
                f"value #{k} type {type(x).__name__} != reference "
                f"{type(y).__name__}{where}"
            )
            assert x == y, f"value #{k}: {x!r} != {y!r}{where}"
    else:
        expected = np.array(
            [got.vals.dtype.type(v) for v in ref.vals],
            dtype=got.vals.dtype,
        )
        assert got.vals.tobytes() == expected.tobytes(), (
            f"typed values not byte-identical to the reference{where}: "
            f"got {got.vals!r}, expected {expected!r}"
        )


def assert_bitwise_equal(x: COOMatrix, y: COOMatrix,
                         context: str = "") -> None:
    """Assert two typed products are the same matrix bit for bit."""
    where = f" [{context}]" if context else ""
    assert x.shape == y.shape, f"shape mismatch{where}"
    xs, ys = x.sort(), y.sort()
    np.testing.assert_array_equal(xs.rows, ys.rows,
                                  err_msg=f"row coords diverge{where}")
    np.testing.assert_array_equal(xs.cols, ys.cols,
                                  err_msg=f"col coords diverge{where}")
    assert xs.vals.dtype == ys.vals.dtype, (
        f"dtype {xs.vals.dtype} != {ys.vals.dtype}{where}"
    )
    assert xs.vals.tobytes() == ys.vals.tobytes(), (
        f"values not bitwise identical{where}"
    )


def sweep_kernel(
    name: str,
    dtypes=SWEEP_DTYPES,
    semirings=SWEEP_SEMIRINGS,
    seed: int = 0,
) -> int:
    """Run one registered kernel over its covered slice of the corpus ×
    semiring × dtype grid, asserting conformance on every product.

    Returns the number of products actually checked (callers assert it is
    large enough that the sweep cannot silently go vacuous).
    """
    spec = get_kernel(name)
    checked = 0
    for semiring in semirings:
        for dt in dtypes:
            da, db = dt if isinstance(dt, tuple) else (dt, dt)
            for case, a, b in corpus((da, db), seed=seed):
                if not spec.covers(semiring, a.data.dtype, b.data.dtype):
                    continue
                got = spec.fn(a, b, semiring)
                assert_conforms(
                    got, a, b, semiring,
                    context=f"kernel={name} semiring={semiring.name} "
                    f"case={case} dtypes={np.dtype(da).name}x"
                    f"{np.dtype(db).name}",
                )
                checked += 1
    return checked


# ---------------------------------------------------------------------------
# distributed formulation (module-level SPMD body: picklable under mp/spawn)
# ---------------------------------------------------------------------------

#: Semirings hold lambdas (unpicklable), so SPMD bodies take names and
#: resolve them on the executing rank.
_SEMIRINGS_BY_NAME = {s.name: s for s in SWEEP_SEMIRINGS}


def _summa_kernel_body(comm, shape_a, shape_b, a_triples, b_triples,
                       semiring_name, kernel):
    grid = ProcessGrid.create(comm)
    semiring = _SEMIRINGS_BY_NAME[semiring_name]
    mine = slice(comm.rank, None, comm.size)
    da = DistSparseMatrix.distribute(
        grid, shape_a[0], shape_a[1],
        a_triples[0][mine], a_triples[1][mine], a_triples[2][mine],
    )
    db = DistSparseMatrix.distribute(
        grid, shape_b[0], shape_b[1],
        b_triples[0][mine], b_triples[1][mine], b_triples[2][mine],
    )
    c = summa(da, db, semiring, kernel=kernel)
    return c.gather_global()


def summa_product(
    nranks: int,
    a: COOMatrix,
    b: COOMatrix,
    semiring_name: str = "arithmetic",
    kernel: str | None = None,
    comm_backend: str = "sim",
) -> COOMatrix:
    """Scatter ``a``/``b`` over a √p × √p grid (interleaved triple
    slices), run SUMMA with the given delegated ``kernel`` (``None`` =
    in-repo dispatch), and return the gathered global product."""
    results = run_spmd(
        nranks, _summa_kernel_body,
        a.shape, b.shape,
        (a.rows, a.cols, a.vals), (b.rows, b.cols, b.vals),
        semiring_name, kernel,
        comm_backend=comm_backend,
    )
    return results[0]
