"""Tests for base-24 k-mer ids and extraction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bio.alphabet import encode_sequence
from repro.bio.sequences import SequenceStore
from repro.kmers.encoding import (
    MAX_K,
    decode_kmer,
    encode_kmer,
    kmer_id_from_string,
    kmer_space_size,
    kmer_string_from_id,
)
from repro.kmers.extraction import (
    sequence_kmers,
    store_kmers,
    unique_sequence_kmers,
)


class TestEncoding:
    def test_paper_example_rcq(self):
        # Section V-B: RCQ -> 1*24^2 + 4*24 + 5 = 677
        assert kmer_id_from_string("RCQ") == 677

    def test_first_and_last(self):
        assert kmer_id_from_string("AAA") == 0
        assert kmer_id_from_string("***") == 24**3 - 1

    def test_space_size(self):
        assert kmer_space_size(6) == 24**6

    def test_space_size_bounds(self):
        with pytest.raises(ValueError):
            kmer_space_size(0)
        with pytest.raises(ValueError):
            kmer_space_size(MAX_K + 1)

    def test_decode_basic(self):
        assert kmer_string_from_id(677, 3) == "RCQ"

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            decode_kmer(24**3, 3)
        with pytest.raises(ValueError):
            decode_kmer(-1, 3)

    def test_encode_bad_index(self):
        with pytest.raises(ValueError):
            encode_kmer(np.array([0, 24, 1]))

    @given(
        st.lists(st.integers(0, 23), min_size=1, max_size=8).map(np.array)
    )
    def test_roundtrip(self, indices):
        kid = encode_kmer(indices)
        assert (decode_kmer(kid, len(indices)) == indices).all()

    @given(st.integers(1, 6))
    def test_bijection_boundaries(self, k):
        hi = kmer_space_size(k) - 1
        assert encode_kmer(decode_kmer(0, k)) == 0
        assert encode_kmer(decode_kmer(hi, k)) == hi


class TestExtraction:
    def test_count(self):
        enc = encode_sequence("AVGDMIKR")
        ids, pos = sequence_kmers(enc, 3)
        assert len(ids) == 6  # L - k + 1
        assert pos.tolist() == list(range(6))

    def test_ids_correct(self):
        enc = encode_sequence("AVGD")
        ids, _ = sequence_kmers(enc, 3)
        assert ids[0] == kmer_id_from_string("AVG")
        assert ids[1] == kmer_id_from_string("VGD")

    def test_short_sequence(self):
        enc = encode_sequence("AV")
        ids, pos = sequence_kmers(enc, 3)
        assert len(ids) == 0
        assert len(pos) == 0

    def test_exact_length(self):
        enc = encode_sequence("AVG")
        ids, pos = sequence_kmers(enc, 3)
        assert len(ids) == 1 and pos[0] == 0

    def test_unique_keeps_first_position(self):
        # AVG appears at 0 and 5 in AVGAVAVG? craft: AVGXAVG
        enc = encode_sequence("AVGWAVG")
        ids, pos = unique_sequence_kmers(enc, 3)
        avg = kmer_id_from_string("AVG")
        where = np.nonzero(ids == avg)[0]
        assert len(where) == 1
        assert pos[where[0]] == 0

    def test_unique_sorted_ids(self):
        enc = encode_sequence("WKRAVGDMI")
        ids, _ = unique_sequence_kmers(enc, 3)
        assert (np.diff(ids) > 0).all()

    def test_store_kmers(self, small_store):
        rows, cols, vals = store_kmers(small_store, 3)
        assert len(rows) == len(cols) == len(vals)
        # row 2 is WWWWYYYY: kmers WWW(x2, deduped), WWY, WYY, YYY...
        r2 = rows == 2
        assert r2.sum() == len(np.unique(cols[r2]))

    def test_store_kmers_positions_valid(self, small_store):
        rows, cols, vals = store_kmers(small_store, 3)
        for r, v in zip(rows, vals):
            assert 0 <= v <= small_store.length(int(r)) - 3

    def test_store_kmers_empty_store(self):
        rows, cols, vals = store_kmers(SequenceStore(["AV"]), 3)
        assert len(rows) == 0
