"""Tests for the min-max heap (paper Algorithms 1-3 data structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmers.minmaxheap import MinMaxHeap


class TestBasics:
    def test_empty(self):
        h = MinMaxHeap()
        assert len(h) == 0
        assert not h
        with pytest.raises(IndexError):
            h.find_min()
        with pytest.raises(IndexError):
            h.find_max()
        with pytest.raises(IndexError):
            h.pop_min()
        with pytest.raises(IndexError):
            h.pop_max()

    def test_single(self):
        h = MinMaxHeap([(5, "a")])
        assert h.find_min() == (5, "a")
        assert h.find_max() == (5, "a")

    def test_two(self):
        h = MinMaxHeap([(5, "a"), (3, "b")])
        assert h.find_min()[0] == 3
        assert h.find_max()[0] == 5

    def test_values_attached(self):
        h = MinMaxHeap()
        h.push(2, "two")
        h.push(1, "one")
        assert h.pop_min() == (1, "one")
        assert h.pop_min() == (2, "two")

    def test_pop_min_order(self):
        h = MinMaxHeap((k, None) for k in [5, 1, 9, 3, 7, 2, 8])
        out = [h.pop_min()[0] for _ in range(len(h))]
        assert out == sorted(out)

    def test_pop_max_order(self):
        h = MinMaxHeap((k, None) for k in [5, 1, 9, 3, 7, 2, 8])
        out = [h.pop_max()[0] for _ in range(len(h))]
        assert out == sorted(out, reverse=True)

    def test_duplicates(self):
        h = MinMaxHeap((k, None) for k in [4, 4, 4, 1, 1, 9])
        assert h.pop_min()[0] == 1
        assert h.pop_max()[0] == 9
        assert h.pop_max()[0] == 4

    def test_keys_sorted(self):
        h = MinMaxHeap((k, None) for k in [3, 1, 2])
        assert h.keys_sorted() == [1, 2, 3]


class TestBounded:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MinMaxHeap(capacity=0)

    def test_push_bounded_requires_capacity(self):
        with pytest.raises(ValueError):
            MinMaxHeap().push_bounded(1)

    def test_keeps_m_smallest(self):
        h = MinMaxHeap(capacity=3)
        for k in [9, 2, 7, 1, 8, 3]:
            h.push_bounded(k)
        assert h.keys_sorted() == [1, 2, 3]

    def test_is_full(self):
        h = MinMaxHeap(capacity=2)
        assert not h.is_full()
        h.push_bounded(1)
        h.push_bounded(2)
        assert h.is_full()

    def test_rejects_larger_when_full(self):
        h = MinMaxHeap(capacity=2)
        h.push_bounded(1)
        h.push_bounded(2)
        assert not h.push_bounded(5)
        assert h.push_bounded(0)
        assert h.keys_sorted() == [0, 1]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=80))
def test_property_min_max_invariant(keys):
    h = MinMaxHeap((k, None) for k in keys)
    assert h.find_min()[0] == min(keys)
    assert h.find_max()[0] == max(keys)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "pop_min", "pop_max"]),
                  st.integers(-100, 100)),
        min_size=1,
        max_size=120,
    )
)
def test_property_against_sorted_list_model(ops):
    h = MinMaxHeap()
    model: list[int] = []
    for op, key in ops:
        if op == "push":
            h.push(key)
            model.append(key)
        elif op == "pop_min" and model:
            assert h.pop_min()[0] == min(model)
            model.remove(min(model))
        elif op == "pop_max" and model:
            assert h.pop_max()[0] == max(model)
            model.remove(max(model))
        if model:
            assert h.find_min()[0] == min(model)
            assert h.find_max()[0] == max(model)
        assert len(h) == len(model)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=60),
    st.integers(1, 10),
)
def test_property_bounded_equals_nsmallest(keys, m):
    h = MinMaxHeap(capacity=m)
    for k in keys:
        h.push_bounded(k)
    assert h.keys_sorted() == sorted(keys)[:m]
