"""Tests for MCL, connected components, and clustering metrics."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.components import UnionFind, connected_components
from repro.cluster.mcl import clusters_to_labels, markov_clustering
from repro.cluster.metrics import (
    pairwise_metrics,
    weighted_precision_recall,
)
from repro.core.graph import SimilarityGraph


def _clique_graph(sizes, weight=1.0):
    """Disjoint cliques with the given sizes."""
    edges = []
    base = 0
    for s in sizes:
        for a in range(s):
            for b in range(a + 1, s):
                edges.append((base + a, base + b, weight))
        base += s
    return SimilarityGraph.from_edges(sum(sizes), edges)


class TestMCL:
    def test_disjoint_cliques(self):
        g = _clique_graph([4, 3, 5])
        res = markov_clustering(g)
        assert res.n_clusters == 3
        assert res.converged
        # members of each clique share a label
        assert len(set(res.labels[:4].tolist())) == 1
        assert len(set(res.labels[4:7].tolist())) == 1

    def test_singletons_stable(self):
        g = SimilarityGraph.from_edges(5, [(0, 1, 1.0)])
        res = markov_clustering(g)
        assert res.n_clusters == 4  # {0,1} plus three singletons

    def test_empty_graph(self):
        res = markov_clustering(SimilarityGraph.from_edges(0, []))
        assert res.n_clusters == 0

    def test_weak_bridge_cut_by_inflation(self):
        # two cliques joined by one weak edge: MCL should split them
        g = _clique_graph([5, 5])
        edges = list(zip(g.ri.tolist(), g.rj.tolist(), g.weights.tolist()))
        edges.append((0, 5, 0.05))
        g2 = SimilarityGraph.from_edges(10, edges)
        res = markov_clustering(g2, inflation=2.0)
        assert res.n_clusters == 2

    def test_accepts_scipy_matrix(self):
        g = _clique_graph([3, 3])
        res = markov_clustering(g.to_scipy())
        assert res.n_clusters == 2

    def test_clusters_roundtrip(self):
        g = _clique_graph([4, 3])
        res = markov_clustering(g)
        labels = clusters_to_labels(res.clusters(), g.n)
        pr = weighted_precision_recall(labels, res.labels)
        assert pr.precision == 1.0 and pr.recall == 1.0

    def test_higher_inflation_finer_or_equal(self):
        g = _clique_graph([6, 6])
        coarse = markov_clustering(g, inflation=1.5)
        fine = markov_clustering(g, inflation=4.0)
        assert fine.n_clusters >= coarse.n_clusters


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.count == 4
        assert uf.find(0) == uf.find(1)

    def test_labels_contiguous(self):
        uf = UnionFind(6)
        uf.union(0, 3)
        uf.union(4, 5)
        labels = uf.labels()
        assert labels[0] == labels[3]
        assert labels[4] == labels[5]
        assert set(labels.tolist()) == set(range(4))

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 30),
        edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)),
                       max_size=60),
    )
    def test_property_matches_networkx(self, n, edges):
        edges = [(a % n, b % n) for a, b in edges if a % n != b % n]
        g = SimilarityGraph.from_edges(
            n, [(a, b, 1.0) for a, b in edges]
        )
        labels, ncomp = connected_components(g)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        assert ncomp == nx.number_connected_components(nxg)
        for comp in nx.connected_components(nxg):
            comp = list(comp)
            assert len({labels[c] for c in comp}) == 1


class TestMetrics:
    def test_perfect(self):
        fam = np.array([0, 0, 1, 1, 2])
        pr = weighted_precision_recall(fam, fam)
        assert pr.precision == 1.0
        assert pr.recall == 1.0
        assert pr.f1 == 1.0

    def test_all_in_one_cluster(self):
        fam = np.array([0, 0, 1, 1])
        clu = np.zeros(4, dtype=int)
        pr = weighted_precision_recall(clu, fam)
        assert pr.precision == 0.5  # dominant family covers half
        assert pr.recall == 1.0     # every family intact in the cluster

    def test_all_singleton_clusters(self):
        fam = np.array([0, 0, 0, 0])
        clu = np.arange(4)
        pr = weighted_precision_recall(clu, fam)
        assert pr.precision == 1.0  # each cluster is pure
        assert pr.recall == 0.25    # family shattered

    def test_split_family(self):
        fam = np.array([0, 0, 0, 0, 1, 1])
        clu = np.array([0, 0, 1, 1, 2, 2])
        pr = weighted_precision_recall(clu, fam)
        assert pr.precision == 1.0
        assert pr.recall == pytest.approx(4 / 6)

    def test_negative_singleton_labels(self):
        fam = np.array([0, 0, -1, -2])
        clu = np.array([0, 0, 1, 2])
        pr = weighted_precision_recall(clu, fam)
        assert pr.precision == 1.0
        assert pr.recall == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_precision_recall(np.array([0]), np.array([0, 1]))

    def test_f1_zero(self):
        from repro.cluster.metrics import PrecisionRecall

        assert PrecisionRecall(0.0, 0.0).f1 == 0.0

    def test_pairwise_perfect(self):
        fam = np.array([0, 0, 1, 1])
        pr = pairwise_metrics(fam, fam)
        assert pr.precision == 1.0 and pr.recall == 1.0

    def test_pairwise_merge_hurts_precision(self):
        fam = np.array([0, 0, 1, 1])
        clu = np.zeros(4, dtype=int)
        pr = pairwise_metrics(clu, fam)
        assert pr.precision == pytest.approx(2 / 6)
        assert pr.recall == 1.0
