"""Tests for gapped x-drop extension and seed-and-extend alignment."""

import numpy as np
import pytest

from repro.bio.alphabet import encode_sequence
from repro.bio.generate import mutate, random_protein
from repro.bio.scoring import BLOSUM62
from repro.align.smith_waterman import smith_waterman
from repro.align.xdrop import xdrop_align, xdrop_extend
from repro.kmers.extraction import sequence_kmers


def _shared_seed(a, b, k):
    ia, pa = sequence_kmers(a, k)
    ib, pb = sequence_kmers(b, k)
    common = set(ia.tolist()) & set(ib.tolist())
    kid = sorted(common)[0]
    return int(pa[list(ia).index(kid)]), int(pb[list(ib).index(kid)])


class TestExtend:
    def test_empty_inputs(self):
        r = xdrop_extend(np.empty(0, dtype=np.int8),
                         encode_sequence("AVG"), 20)
        assert r.score == 0 and r.ext_a == 0

    def test_identical_full_extension(self):
        a = encode_sequence("AVGDMIKR")
        r = xdrop_extend(a, a, 49)
        assert r.score == BLOSUM62.self_score(a)
        assert r.ext_a == len(a)
        assert r.ext_b == len(a)
        assert r.matches == len(a)

    def test_stops_at_divergence(self):
        a = encode_sequence("AVGDMI" + "W" * 30)
        b = encode_sequence("AVGDMI" + "P" * 30)
        r = xdrop_extend(a, b, xdrop=10)
        assert r.ext_a <= 10  # extension dies shortly after the match
        assert r.score == BLOSUM62.self_score(encode_sequence("AVGDMI"))

    def test_small_xdrop_less_permissive(self):
        s = random_protein(80, 0)
        a = encode_sequence(s)
        b = encode_sequence(mutate(s, 0.3, 0.05, 1))
        r_small = xdrop_extend(a, b, xdrop=3)
        r_large = xdrop_extend(a, b, xdrop=100)
        assert r_large.score >= r_small.score

    def test_gap_crossing(self):
        # extension must bridge a 2-residue insertion
        s = "AVGDMIKRWLE"
        a = encode_sequence(s)
        b = encode_sequence(s[:5] + "PP" + s[5:])
        r = xdrop_extend(a, b, xdrop=49)
        assert r.ext_a == len(a)
        assert r.ext_b == len(b)

    def test_stats_bounds(self):
        s = random_protein(60, 2)
        a = encode_sequence(s)
        b = encode_sequence(mutate(s, 0.2, 0.02, 3))
        r = xdrop_extend(a, b, 49)
        assert 0 <= r.matches <= r.length
        assert r.length >= max(r.ext_a, r.ext_b)


class TestXdropAlign:
    def test_identical_with_seed(self):
        a = encode_sequence("AVGDMIKRWLEN")
        res = xdrop_align(a, a, 3, 3, 4)
        assert res.score == BLOSUM62.self_score(a)
        assert res.identity == 1.0
        assert res.coverage_short == 1.0

    def test_seed_out_of_range(self):
        a = encode_sequence("AVGDMI")
        with pytest.raises(ValueError):
            xdrop_align(a, a, 5, 0, 4)

    def test_score_at_most_sw(self):
        rng = np.random.default_rng(5)
        for trial in range(8):
            s = random_protein(70, rng)
            a = encode_sequence(s)
            b = encode_sequence(mutate(s, 0.15, 0.02, rng))
            sa, sb = _shared_seed(a, b, 4)
            xd = xdrop_align(a, b, sa, sb, 4, xdrop=49)
            sw = smith_waterman(a, b)
            assert xd.score <= sw.score

    def test_high_xdrop_approaches_sw_on_related(self):
        s = random_protein(100, 11)
        a = encode_sequence(s)
        b = encode_sequence(mutate(s, 0.08, 0.0, 12))
        sa, sb = _shared_seed(a, b, 5)
        xd = xdrop_align(a, b, sa, sb, 5, xdrop=200)
        sw = smith_waterman(a, b)
        assert xd.score >= 0.9 * sw.score

    def test_spans_contain_seed(self):
        s = random_protein(80, 13)
        a = encode_sequence(s)
        b = encode_sequence(mutate(s, 0.1, 0.0, 14))
        sa, sb = _shared_seed(a, b, 4)
        res = xdrop_align(a, b, sa, sb, 4)
        assert res.a_start <= sa and res.a_end >= sa + 4
        assert res.b_start <= sb and res.b_end >= sb + 4

    def test_mode_label(self):
        a = encode_sequence("AVGDMIKR")
        assert xdrop_align(a, a, 0, 0, 4).mode == "xd"
