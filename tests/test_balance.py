"""Tests for the cross-rank alignment rebalancing subsystem
(:mod:`repro.core.balance`): the DP-cell cost model, the deterministic
greedy bin-pack plan (identical on every rank), and the task codec."""

import numpy as np
import pytest

from repro.align.batch import AlignmentTask
from repro.core.balance import (
    RebalancePlan,
    decode_tasks,
    encode_tasks,
    estimate_batch_cells,
    estimate_task_cells,
    greedy_plan,
    xdrop_corridor_width,
)
from repro.mpisim.comm import run_spmd


def _task(la, lb, nseeds=1, pair=(0, 1)):
    rng = np.random.default_rng(la * 1000 + lb)
    return AlignmentTask(
        a=rng.integers(0, 20, la).astype(np.int8),
        b=rng.integers(0, 20, lb).astype(np.int8),
        seeds=tuple((s, s) for s in range(nseeds)),
        pair=pair,
    )


class TestCostModel:
    def test_sw_is_full_matrix(self):
        assert estimate_task_cells(_task(10, 20), "sw", 6, 49) == 11 * 21

    def test_xd_corridor_caps_width(self):
        t = _task(100, 200)
        w = xdrop_corridor_width(49, 1)
        assert estimate_task_cells(t, "xd", 6, 49, 1) == 101 * min(w, 201)
        # a short second operand caps the corridor at its full width
        t2 = _task(100, 8)
        assert estimate_task_cells(t2, "xd", 6, 49, 1) == 101 * 9

    def test_xd_two_seeds_double(self):
        one = estimate_task_cells(_task(50, 50, nseeds=1), "xd", 6, 49)
        two = estimate_task_cells(_task(50, 50, nseeds=2), "xd", 6, 49)
        assert two == 2 * one
        # align_pair only ever extends from the first two seeds
        many = estimate_task_cells(_task(50, 50, nseeds=5), "xd", 6, 49)
        assert many == two

    def test_sub_k_pair_is_nominal(self):
        # the engine skips pairs too short for a k-mer with an empty result
        assert estimate_task_cells(_task(3, 50), "xd", 6, 49) == 1

    def test_gap_extend_narrows_corridor(self):
        assert xdrop_corridor_width(49, 1) > xdrop_corridor_width(49, 7)
        assert xdrop_corridor_width(49, 0) == xdrop_corridor_width(49, 1)

    def test_batch_vector(self):
        tasks = [_task(10, 10), _task(20, 20)]
        assert estimate_batch_cells(tasks, "sw", 6, 49) == [
            11 * 11, 21 * 21
        ]


class TestGreedyPlan:
    def test_every_task_assigned_once_and_loads_conserved(self):
        vectors = [[5, 3], [9], [], [2, 2, 2]]
        plan = greedy_plan(vectors)
        assert [len(d) for d in plan.dest] == [2, 1, 0, 3]
        for d in plan.dest:
            assert ((d >= 0) & (d < 4)).all()
        assert plan.pre_cells.sum() == plan.post_cells.sum() == 23
        # post loads recomputed from the assignment must match the plan
        loads = np.zeros(4, dtype=np.int64)
        for v, d in zip(vectors, plan.dest):
            for c, dst in zip(v, d):
                loads[dst] += c
        assert (loads == plan.post_cells).all()

    def test_deterministic_and_balanced(self):
        rng = np.random.default_rng(7)
        vectors = [rng.integers(1, 500, rng.integers(0, 30)).tolist()
                   for _ in range(9)]
        p1, p2 = greedy_plan(vectors), greedy_plan(vectors)
        assert all((a == b).all() for a, b in zip(p1.dest, p2.dest))
        # LPT is a 4/3-approximation; a generous bound locks in sanity
        total = p1.pre_cells.sum()
        assert p1.post_cells.max() <= max(
            2 * total // 9, max(max(v) for v in vectors if v)
        )

    def test_balanced_input_ships_nothing(self):
        plan = greedy_plan([[10], [10], [10], [10]])
        assert plan.moved_tasks() == 0
        assert plan.flows() == []
        assert (plan.pre_cells == plan.post_cells).all()

    def test_balanced_multi_task_grid_ships_nothing(self):
        """Regression: the single-pass LPT used to bounce most tasks off
        their home rank even when every rank was already at the achievable
        budget — paying shipping for zero load improvement."""
        plan = greedy_plan([[10] * 4] * 4)
        assert plan.moved_tasks() == 0
        assert plan.post_cells.tolist() == [40, 40, 40, 40]
        plan = greedy_plan([[10, 10], [10, 10]])
        assert plan.moved_tasks() == 0
        # near-balanced: only the genuine surplus moves
        plan = greedy_plan([[10, 10, 10], [10], [10, 10], [10, 10]])
        assert plan.post_cells.max() == 20
        assert plan.moved_tasks() == 1

    def test_skew_levelled(self):
        # one rank holds the whole triangle: 12 equal tasks over 4 ranks
        plan = greedy_plan([[100] * 12, [], [], []])
        assert plan.pre_cells.tolist() == [1200, 0, 0, 0]
        assert plan.post_cells.tolist() == [300, 300, 300, 300]
        assert max(plan.post_cells) * 2 <= max(plan.pre_cells)
        assert plan.moved_tasks() == 9

    def test_empty_everything(self):
        plan = greedy_plan([[], [], [], []])
        assert plan.moved_tasks() == 0
        assert plan.post_cells.tolist() == [0, 0, 0, 0]

    def test_single_task_single_rank(self):
        plan = greedy_plan([[42]])
        assert plan.dest[0].tolist() == [0]
        assert plan.flows() == []

    def test_single_task_stays_home(self):
        # all loads tie at zero, so the keep-at-home tie-break wins
        plan = greedy_plan([[], [7], [], []])
        assert plan.dest[1].tolist() == [1]
        assert plan.moved_tasks() == 0

    def test_flows_match_dest(self):
        plan = greedy_plan([[9, 9, 9, 9], [1], [1], [1]])
        flows = plan.flows()
        assert flows == sorted(flows)
        shipped = {(s, d): c for s, d, c in flows}
        for src, dests in enumerate(plan.dest):
            for dst, cnt in zip(*np.unique(dests[dests != src],
                                           return_counts=True)):
                assert shipped[(src, int(dst))] == int(cnt)

    def test_identical_plan_on_every_rank(self):
        """The SPMD contract: allgathered cost vectors produce the same
        plan object on all ranks, with no negotiation round."""
        def body(comm):
            local = [(comm.rank + 1) * 10] * (comm.rank * 2)
            plan = greedy_plan(comm.allgather(local))
            return (
                [d.tolist() for d in plan.dest],
                plan.post_cells.tolist(),
            )

        out = run_spmd(4, body)
        assert all(o == out[0] for o in out[1:])


class TestTaskCodec:
    def test_roundtrip(self):
        tasks = [
            _task(12, 30, nseeds=2, pair=(3, 9)),
            _task(7, 7, nseeds=1, pair=(0, 4)),
            _task(5, 40, nseeds=0, pair=(8, 11)),
        ]
        out = decode_tasks(encode_tasks(tasks))
        assert len(out) == len(tasks)
        for orig, got in zip(tasks, out):
            assert got.pair == orig.pair
            assert got.seeds == orig.seeds
            assert got.a.dtype == np.int8 and got.b.dtype == np.int8
            np.testing.assert_array_equal(got.a, orig.a)
            np.testing.assert_array_equal(got.b, orig.b)

    def test_empty_batch(self):
        payload = encode_tasks([])
        assert decode_tasks(payload) == []

    def test_payload_is_flat_arrays(self):
        """The payload must be a tuple of plain ndarrays so the tracer
        sizes it by buffer (honest shipped-byte accounting)."""
        payload = encode_tasks([_task(10, 10)])
        assert isinstance(payload, tuple)
        assert all(isinstance(p, np.ndarray) for p in payload)

    def test_alignment_invariant_under_codec(self):
        """A shipped task must align byte-identically to the original."""
        from repro.align.batch import align_batch

        tasks = [_task(40, 44, nseeds=2, pair=(1, 2))]
        shipped = decode_tasks(encode_tasks(tasks))
        for mode in ("xd", "sw"):
            ref = align_batch(tasks, mode=mode, k=6)
            got = align_batch(shipped, mode=mode, k=6)
            assert got == ref


class TestPlanShape:
    def test_frozen(self):
        plan = greedy_plan([[1], [2]])
        assert isinstance(plan, RebalancePlan)
        with pytest.raises(AttributeError):
            plan.dest = ()
