"""Tests for the simulated MPI runtime."""

import numpy as np
import pytest

from repro.mpisim.comm import ANY_SOURCE, SimComm, SpmdError, run_spmd
from repro.mpisim.grid import (
    ProcessGrid,
    block_ranges,
    is_perfect_square,
    nearest_square,
)
from repro.mpisim.tracing import SUMMARY_SCHEMA, CommTracer, payload_bytes


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1)
                return None
            return comm.recv(source=0)

        assert run_spmd(2, fn)[1] == {"x": 1}

    def test_fifo_order(self):
        def fn(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(5)]

        assert run_spmd(2, fn)[1] == [0, 1, 2, 3, 4]

    def test_tags_match_independently(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            b = comm.recv(source=0, tag=2)
            a = comm.recv(source=0, tag=1)
            return (a, b)

        assert run_spmd(2, fn)[1] == ("a", "b")

    def test_any_source(self):
        def fn(comm):
            if comm.rank == 2:
                got = {comm.recv(source=ANY_SOURCE) for _ in range(2)}
                return got
            comm.send(comm.rank, dest=2)
            return None

        assert run_spmd(3, fn)[2] == {0, 1}

    def test_isend_irecv_waitall(self):
        def fn(comm):
            reqs = []
            for dst in range(comm.size):
                if dst != comm.rank:
                    comm.isend(comm.rank * 10, dest=dst)
            for src in range(comm.size):
                if src != comm.rank:
                    reqs.append(comm.irecv(source=src))
            vals = SimComm.waitall(reqs)
            return sorted(vals)

        out = run_spmd(3, fn)
        assert out[0] == [10, 20]
        assert out[2] == [0, 10]

    def test_bad_destination(self):
        with pytest.raises(SpmdError):
            run_spmd(2, lambda comm: comm.send(1, dest=5))


class TestRequestTest:
    """Regression: ``Request.test()`` used to return ``(False, None)``
    unconditionally for any pending request; it now performs a real
    non-blocking completion check (polling the mailbox under the
    condition lock), which the alignment rebalance stage depends on."""

    def test_pending_then_completed(self):
        def fn(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=7)
                before = req.test()          # nothing sent yet
                comm.send("go", dest=0)      # unblock the sender
                comm.recv(source=0, tag=8)   # message 7 is now queued too
                mid = req.test()             # completes without blocking
                after = req.test()           # latched
                return before, mid, after, req.wait()
            comm.recv(source=1)
            comm.send("payload", dest=1, tag=7)
            comm.send("fence", dest=1, tag=8)
            return None

        before, mid, after, waited = run_spmd(2, fn)[1]
        assert before == (False, None)
        assert mid == (True, "payload")
        assert after == (True, "payload")
        assert waited == "payload"

    def test_test_consumes_matching_message_once(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=9)  # fence: both sends delivered
                r1 = comm.irecv(source=0, tag=3)
                r2 = comm.irecv(source=0, tag=3)
                ok1, v1 = r1.test()
                ok2, v2 = r2.test()
                return ok1, v1, ok2, v2
            comm.send("first", dest=1, tag=3)
            comm.send("second", dest=1, tag=3)
            comm.send(None, dest=1, tag=9)
            return None

        ok1, v1, ok2, v2 = run_spmd(2, fn)[1]
        # FIFO per channel: each test() pops exactly one matching message
        assert (ok1, v1) == (True, "first")
        assert (ok2, v2) == (True, "second")

    def test_test_respects_source_and_tag(self):
        def fn(comm):
            if comm.rank == 2:
                comm.recv(source=0, tag=9)  # fence
                wrong = comm.irecv(source=1, tag=5).test()
                right = comm.irecv(source=0, tag=5).test()
                return wrong, right
            if comm.rank == 0:
                comm.send("hit", dest=2, tag=5)
                comm.send(None, dest=2, tag=9)
            return None

        wrong, right = run_spmd(3, fn)[2]
        assert wrong == (False, None)
        assert right == (True, "hit")

    def test_isend_request_is_complete(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(1, dest=1)
                return req.test()
            return comm.recv(source=0)

        assert run_spmd(2, fn)[0] == (True, None)


class TestRunSpmdFailureModes:
    """Regression: a rank stuck in pure compute never observes
    ``backend.abort`` (only communication calls check the error), so the
    driver used to return a results list containing ``None`` silently."""

    def test_stuck_compute_rank_raises(self):
        import threading
        import time

        release = threading.Event()

        def body(comm):
            if comm.rank == 1:
                while not release.is_set():  # pure compute, no comm calls
                    time.sleep(0.005)
            return comm.rank

        try:
            with pytest.raises(SpmdError, match="did not terminate"):
                run_spmd(2, body, timeout=0.2)
        finally:
            release.set()  # let the leaked thread exit promptly

    def test_stuck_rank_named_over_victim_timeout(self):
        """The stuck rank must be diagnosed even when another rank
        recorded a timeout failure first — that rank is a victim of the
        stuck one, and blaming it would hide the root cause."""
        import threading
        import time

        release = threading.Event()

        def body(comm):
            if comm.rank == 0:
                return comm.recv(source=1)  # victim: times out waiting
            while not release.is_set():     # the actual culprit
                time.sleep(0.005)
            return None

        try:
            with pytest.raises(SpmdError,
                               match=r"ranks \[1\] did not terminate"):
                run_spmd(2, body, timeout=0.1)
        finally:
            release.set()

    def test_none_result_is_legitimate(self):
        # fn returning None must not be mistaken for an unfilled slot
        assert run_spmd(2, lambda comm: None) == [None, None]


class TestCollectives:
    def test_barrier(self):
        assert run_spmd(4, lambda comm: comm.barrier()) == [None] * 4

    def test_bcast(self):
        def fn(comm):
            return comm.bcast("payload" if comm.rank == 1 else None, root=1)

        assert run_spmd(3, fn) == ["payload"] * 3

    def test_allgather(self):
        out = run_spmd(4, lambda comm: comm.allgather(comm.rank ** 2))
        assert out == [[0, 1, 4, 9]] * 4

    def test_gather(self):
        out = run_spmd(3, lambda comm: comm.gather(comm.rank, root=1))
        assert out[0] is None
        assert out[1] == [0, 1, 2]

    def test_scatter(self):
        def fn(comm):
            objs = [f"r{i}" for i in range(comm.size)] if comm.rank == 0 \
                else None
            return comm.scatter(objs, root=0)

        assert run_spmd(3, fn) == ["r0", "r1", "r2"]

    def test_scatter_wrong_length(self):
        def fn(comm):
            objs = [1] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        with pytest.raises(SpmdError):
            run_spmd(2, fn)

    def test_alltoall(self):
        def fn(comm):
            return comm.alltoall(
                [comm.rank * 10 + dst for dst in range(comm.size)]
            )

        out = run_spmd(3, fn)
        assert out[0] == [0, 10, 20]
        assert out[2] == [2, 12, 22]

    def test_reduce(self):
        out = run_spmd(
            4, lambda comm: comm.reduce(comm.rank + 1, lambda a, b: a * b)
        )
        assert out[0] == 24
        assert out[1] is None

    def test_allreduce(self):
        out = run_spmd(
            4, lambda comm: comm.allreduce(comm.rank, lambda a, b: a + b)
        )
        assert out == [6] * 4

    def test_exscan(self):
        out = run_spmd(4, lambda comm: comm.exscan(comm.rank + 1))
        assert out == [0, 1, 3, 6]

    def test_repeated_collectives(self):
        def fn(comm):
            total = 0
            for i in range(20):
                total += comm.allreduce(i, lambda a, b: a + b)
            return total

        out = run_spmd(3, fn)
        assert out == [sum(3 * i for i in range(20))] * 3

    def test_numpy_payloads(self):
        def fn(comm):
            arr = np.full(10, comm.rank)
            gathered = comm.allgather(arr)
            return sum(int(g.sum()) for g in gathered)

        assert run_spmd(3, fn) == [30] * 3


class TestSplit:
    def test_split_groups(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return (sub.size, sub.rank,
                    sub.allreduce(comm.rank, lambda a, b: a + b))

        out = run_spmd(4, fn)
        assert out[0] == (2, 0, 2)   # ranks 0, 2
        assert out[1] == (2, 0, 4)   # ranks 1, 3
        assert out[3] == (2, 1, 4)

    def test_split_key_order(self):
        def fn(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        out = run_spmd(3, fn)
        assert out == [2, 1, 0]


class TestSatelliteFixes:
    """Regressions for comm-layer bugs fixed while hardening the layer
    into the swappable :class:`CommBackend` interface."""

    def test_shutdown_joins_share_one_deadline(self):
        """Worst-case hang detection must be ~timeout, not
        O(nranks * timeout): the driver used to join each thread with its
        own ``timeout * 2`` budget sequentially."""
        import threading
        import time

        release = threading.Event()

        def body(comm):
            release.wait(3.0)  # pure compute: abort cannot reach it
            return None

        t0 = time.perf_counter()
        try:
            with pytest.raises(SpmdError, match="did not terminate"):
                run_spmd(4, body, timeout=0.25)
        finally:
            release.set()
        elapsed = time.perf_counter() - t0
        # shared deadline: ~timeout*2 + grace; the old sequential joins
        # needed 4 * (timeout*2) + 4 * grace ≈ 3s
        assert elapsed < 2.0, f"shutdown joins took {elapsed:.2f}s"

    def test_split_call_count_mismatch_raises(self):
        """Ranks calling split() an unequal number of times used to pair
        silently into wrong sub-communicator backends (the registry was
        keyed by a per-instance counter); now every rank raises."""

        def body(comm):
            comm.split(color=0)
            if comm.rank == 0:
                comm.split(color=0)  # second split meets rank 1's barrier
            else:
                comm.barrier()

        with pytest.raises(SpmdError, match="split"):
            run_spmd(2, body, timeout=5.0)

    def test_recv_rescans_mailbox_after_deadline(self):
        """A message queued between a timed-out wait and the deadline
        check must be consumed, not reported as a spurious timeout."""
        import time

        from repro.mpisim.comm import _Backend

        be = _Backend(2, None, timeout=0.05)
        rx = SimComm(be, 0)

        def wait_past_deadline(timeout=None):
            # the waiter wakes after the deadline and the message has
            # already landed — exactly the race the re-scan closes
            time.sleep(0.08)
            be.mailboxes[0].append((1, 5, "late"))
            return False

        be.cond.wait = wait_past_deadline
        assert rx.recv(source=1, tag=5) == "late"

    def test_recv_timeout_not_postponed_by_unrelated_traffic(self):
        """The receive deadline is fixed at call time: a peer spamming
        other tags used to restart the full timeout on every notify,
        postponing deadlock detection indefinitely."""
        import time

        def body(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=42)  # never sent
                return None
            for i in range(60):
                comm.send(i, dest=0, tag=1)  # unrelated chatter
                time.sleep(0.02)
            return None

        t0 = time.perf_counter()
        with pytest.raises(SpmdError):
            run_spmd(2, body, timeout=0.3)
        assert time.perf_counter() - t0 < 1.2


class TestErrors:
    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(SpmdError, match="rank 1"):
            run_spmd(3, fn)

    def test_deadlock_times_out(self):
        def fn(comm):
            comm.recv(source=(comm.rank + 1) % comm.size)

        with pytest.raises(SpmdError):
            run_spmd(2, fn, timeout=0.5)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)


class TestTracing:
    def test_p2p_traced(self):
        tracer = CommTracer()

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.float64), dest=1)
            else:
                comm.recv(source=0)

        run_spmd(2, fn, tracer=tracer)
        assert tracer.total_messages == 1
        assert tracer.total_bytes >= 800

    def test_collective_traced(self):
        tracer = CommTracer()
        run_spmd(3, lambda comm: comm.allgather(comm.rank), tracer=tracer)
        assert tracer.messages_by_kind()["allgather"] == 6  # 3 * (3-1)

    def test_payload_bytes(self):
        assert payload_bytes(np.zeros(10, dtype=np.int64)) >= 80
        assert payload_bytes(b"abcd") == 20
        assert payload_bytes({"a": 1}) > 0

    def test_payload_bytes_counts_each_array_once(self):
        """The same ndarray referenced twice in one payload crosses the
        wire once — the sizer must charge its buffer exactly once."""
        a = np.zeros(1000, dtype=np.float64)
        single = payload_bytes(a)
        aliased = payload_bytes((a, a))
        distinct = payload_bytes((a, a.copy()))
        assert single <= aliased < single + 256  # one buffer + envelope
        assert distinct >= 2 * single

    def test_summary_schema(self):
        tracer = CommTracer()

        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            sub.bcast(np.zeros(8), root=0)
            comm.send(b"x", dest=(comm.rank + 1) % comm.size, kind="ring")
            comm.recv(source=(comm.rank - 1) % comm.size)

        run_spmd(4, fn, tracer=tracer)
        doc = tracer.summary()
        assert doc["schema"] == SUMMARY_SCHEMA
        keys = [(g["comm"], g["op"], g["kind"]) for g in doc["groups"]]
        assert keys == sorted(keys)
        # the split fingerprint allgather, both colours' bcasts, and the
        # ring sends each aggregate into their own (comm, op, kind) group
        assert ("world", "allgather", "allgather") in keys
        assert ("world/0.0", "bcast", "bcast") in keys
        assert ("world/0.1", "bcast", "bcast") in keys
        assert ("world", "send", "ring") in keys
        assert doc["total_messages"] == sum(
            g["messages"] for g in doc["groups"]
        ) == tracer.total_messages
        assert doc["total_bytes"] == sum(
            g["bytes"] for g in doc["groups"]
        ) == tracer.total_bytes

    def test_max_rank_volume(self):
        tracer = CommTracer()
        tracer.record(0, 1, 100, "p2p")
        tracer.record(0, 2, 50, "p2p")
        assert tracer.max_rank_volume() == 150
        tracer.clear()
        assert tracer.total_messages == 0


class TestGrid:
    def test_is_perfect_square(self):
        assert is_perfect_square(1)
        assert is_perfect_square(9)
        assert not is_perfect_square(8)

    def test_nearest_square_paper_values(self):
        # the paper runs on 64, 121, 256, 529, 1024, 2025 nodes — the
        # perfect squares nearest to 64, 128, 256, 512, 1024, 2048
        assert nearest_square(128) == 121
        assert nearest_square(512) == 529
        assert nearest_square(2048) == 2025
        assert nearest_square(64) == 64

    def test_nearest_square_invalid(self):
        with pytest.raises(ValueError):
            nearest_square(0)

    def test_block_ranges(self):
        r = block_ranges(10, 3)
        assert r == [(0, 4), (4, 7), (7, 10)]
        assert block_ranges(2, 3) == [(0, 1), (1, 2), (2, 2)]

    def test_grid_coordinates(self):
        def fn(comm):
            g = ProcessGrid.create(comm)
            assert g.rank_of(g.row, g.col) == comm.rank
            return (g.row, g.col, g.row_comm.size, g.col_comm.size)

        out = run_spmd(9, fn)
        assert out[4] == (1, 1, 3, 3)
        assert out[2] == (0, 2, 3, 3)

    def test_grid_requires_square(self):
        with pytest.raises(SpmdError):
            run_spmd(6, lambda comm: ProcessGrid.create(comm))

    def test_row_col_blocks(self):
        def fn(comm):
            g = ProcessGrid.create(comm)
            return (g.row_block(10), g.col_block(7))

        out = run_spmd(4, fn)
        assert out[0] == ((0, 5), (0, 4))
        assert out[3] == ((5, 10), (4, 7))

    def test_rank_of_bounds(self):
        def fn(comm):
            g = ProcessGrid.create(comm)
            try:
                g.rank_of(5, 0)
            except ValueError:
                return "ok"

        assert run_spmd(4, fn) == ["ok"] * 4
