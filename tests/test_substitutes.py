"""Tests for the m-nearest substitute k-mer search (Algorithms 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.alphabet import BASE_TO_INDEX, decode_sequence, encode_sequence
from repro.bio.scoring import BLOSUM62
from repro.kmers.substitutes import (
    brute_force_substitutes,
    find_substitute_kmers,
    kmer_distance,
    substitute_kmer_ids,
)


def _dist_of(results):
    return [s.distance for s in results]


class TestKmerDistance:
    def test_identity_zero(self):
        r = encode_sequence("AVGDMI")
        assert kmer_distance(r, r) == 0

    def test_paper_sac(self):
        # AAC -> SAC: expense 3 (match 17 -> 14)
        assert kmer_distance(encode_sequence("AAC"),
                             encode_sequence("SAC")) == 3

    def test_paper_ssc(self):
        assert kmer_distance(encode_sequence("AAC"),
                             encode_sequence("SSC")) == 6

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kmer_distance(encode_sequence("AA"), encode_sequence("AAC"))


class TestPaperExamples:
    def test_aac_nearest_are_single_A_substitutions(self):
        root = encode_sequence("AAC")
        subs = find_substitute_kmers(root, 2)
        # SAC and ASC, both at distance 3
        got = {decode_sequence(np.array(s.indices)) for s in subs}
        assert got == {"SAC", "ASC"}
        assert all(s.distance == 3 for s in subs)

    def test_multi_substitution_beats_expensive_single(self):
        # paper: {T|C|G}{T|C|G}C (distance 8) is closer to AAC than AA*
        # with a substituted C (distance >= 10)
        root = encode_sequence("AAC")
        ttc = encode_sequence("TTC")
        aam = encode_sequence("AAM")
        assert kmer_distance(root, ttc) == 8
        assert kmer_distance(root, aam) == 10
        subs = find_substitute_kmers(root, 400)
        names = [decode_sequence(np.array(s.indices)) for s in subs]
        assert "TTC" in names
        assert "AAM" in names
        assert names.index("TTC") < names.index("AAM")

    def test_root_never_returned(self):
        root = encode_sequence("AVG")
        subs = find_substitute_kmers(root, 100)
        assert all(tuple(root) != s.indices for s in subs)


class TestSearch:
    def test_m_zero(self):
        assert find_substitute_kmers(encode_sequence("AVG"), 0) == []

    def test_m_negative(self):
        with pytest.raises(ValueError):
            find_substitute_kmers(encode_sequence("AVG"), -1)

    def test_empty_kmer(self):
        assert find_substitute_kmers(np.array([], dtype=np.int64), 5) == []

    def test_bad_index(self):
        with pytest.raises(ValueError):
            find_substitute_kmers(np.array([0, 99]), 3)

    def test_distances_non_decreasing(self):
        subs = find_substitute_kmers(encode_sequence("AVGD"), 50)
        d = _dist_of(subs)
        assert d == sorted(d)

    def test_exactly_m_results(self):
        subs = find_substitute_kmers(encode_sequence("AVG"), 25)
        assert len(subs) == 25

    def test_all_distinct(self):
        subs = find_substitute_kmers(encode_sequence("AVG"), 60)
        assert len({s.indices for s in subs}) == len(subs)

    def test_k1_exhausts_alphabet(self):
        subs = find_substitute_kmers(np.array([0]), 100)
        assert len(subs) == 23  # |Sigma| - 1 candidates exist

    def test_ambiguity_code_negative_distances(self):
        # X scores -1 vs itself, 0 vs A/S/T: substitutes are *closer* than
        # the root itself under the expense definition
        subs = find_substitute_kmers(encode_sequence("XXX"), 5)
        assert subs[0].distance < 0

    def test_substitute_kmer_ids(self):
        from repro.kmers.encoding import kmer_id_from_string

        pairs = substitute_kmer_ids(kmer_id_from_string("AAC"), 3, 2)
        ids = {p[0] for p in pairs}
        assert kmer_id_from_string("SAC") in ids
        assert kmer_id_from_string("ASC") in ids
        assert all(d == 3 for _, d in pairs)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("kmer", ["AAC", "AVG", "WCM", "RR", "KE"])
    @pytest.mark.parametrize("m", [1, 5, 20])
    def test_known_kmers(self, kmer, m):
        root = encode_sequence(kmer)
        fast = find_substitute_kmers(root, m)
        brute = brute_force_substitutes(root, m)
        assert _dist_of(fast) == _dist_of(brute)
        # candidates strictly closer than the boundary distance must agree
        boundary = brute[-1].distance
        fast_inner = {s.indices for s in fast if s.distance < boundary}
        brute_inner = {s.indices for s in brute if s.distance < boundary}
        assert fast_inner == brute_inner

    @settings(max_examples=40, deadline=None)
    @given(
        indices=st.lists(st.integers(0, 23), min_size=1, max_size=3),
        m=st.integers(1, 30),
    )
    def test_property_distance_multiset_matches(self, indices, m):
        root = np.array(indices, dtype=np.int64)
        fast = find_substitute_kmers(root, m)
        brute = brute_force_substitutes(root, m)
        assert _dist_of(fast) == _dist_of(brute)

    @settings(max_examples=20, deadline=None)
    @given(
        indices=st.lists(st.integers(0, 23), min_size=2, max_size=3),
        m=st.integers(1, 25),
    )
    def test_property_every_result_verifies(self, indices, m):
        root = np.array(indices, dtype=np.int64)
        for s in find_substitute_kmers(root, m):
            assert kmer_distance(root, np.array(s.indices)) == s.distance
