"""Tests for the future-work extensions: batched pipeline and k-mer
pre-filtering."""

import numpy as np
import pytest

from repro.bio.generate import scope_like
from repro.bio.sequences import SequenceStore
from repro.core.config import PastisConfig
from repro.core.extensions import (
    high_frequency_kmer_filter,
    kmer_frequency_analysis,
    pastis_pipeline_batched,
)
from repro.core.overlap import find_candidate_pairs
from repro.core.pipeline import pastis_pipeline


@pytest.fixture(scope="module")
def data():
    return scope_like(
        n_families=4, members_per_family=(3, 4), length_range=(50, 90),
        divergence=0.2, seed=55,
    )


class TestBatchedPipeline:
    @pytest.mark.parametrize("batch_rows", [1, 3, 8, 1000])
    def test_equals_monolithic(self, data, batch_rows):
        cfg = PastisConfig(k=4, substitutes=0)
        mono = pastis_pipeline(data.store, cfg)
        batched = pastis_pipeline_batched(data.store, cfg,
                                          batch_rows=batch_rows)
        assert batched.edge_set() == mono.edge_set()
        assert np.allclose(np.sort(batched.weights),
                           np.sort(mono.weights))
        assert batched.meta["aligned_pairs"] == mono.meta["aligned_pairs"]

    def test_substitutes_mode(self, data):
        cfg = PastisConfig(k=4, substitutes=4)
        mono = pastis_pipeline(data.store, cfg)
        batched = pastis_pipeline_batched(data.store, cfg, batch_rows=5)
        assert batched.edge_set() == mono.edge_set()

    def test_batch_count_recorded(self, data):
        cfg = PastisConfig(k=4)
        g = pastis_pipeline_batched(data.store, cfg, batch_rows=4)
        n = len(data.store)
        assert g.meta["batches"] == (n + 3) // 4
        assert g.meta["variant"].endswith("-batched")

    def test_invalid_batch_rows(self, data):
        with pytest.raises(ValueError):
            pastis_pipeline_batched(data.store, PastisConfig(k=4),
                                    batch_rows=0)


class TestKmerFrequency:
    def test_frequencies_descending(self, data):
        rep = kmer_frequency_analysis(data.store, 4)
        assert (np.diff(rep.frequencies) <= 0).all()

    def test_known_frequencies(self):
        store = SequenceStore(["AVGW", "AVGP", "AVGY", "WWWW"])
        rep = kmer_frequency_analysis(store, 3)
        from repro.kmers.encoding import kmer_id_from_string

        top_id, top_f = rep.top(1)[0]
        assert top_id == kmer_id_from_string("AVG")
        assert top_f == 3

    def test_pair_work(self):
        store = SequenceStore(["AVGW", "AVGP", "AVGY", "WWWW"])
        rep = kmer_frequency_analysis(store, 3)
        # AVG appears in 3 sequences -> 3 candidate pairs from it alone
        assert rep.pair_work[0] == 3

    def test_cutoff_for_fraction(self, data):
        rep = kmer_frequency_analysis(data.store, 4)
        cut = rep.cutoff_for_fraction(0.5)
        assert cut >= 1
        with pytest.raises(ValueError):
            rep.cutoff_for_fraction(0.0)

    def test_empty_store(self):
        rep = kmer_frequency_analysis(SequenceStore(["AV"]), 4)
        assert len(rep.kmer_ids) == 0


class TestHighFrequencyFilter:
    def test_huge_threshold_is_identity(self, data):
        cfg = PastisConfig(k=4, substitutes=0)
        base = find_candidate_pairs(data.store, cfg).sort()
        filt = high_frequency_kmer_filter(data.store, cfg, 10**6).sort()
        assert filt.pair_set() == base.pair_set()
        assert filt.counts.tolist() == base.counts.tolist()

    def test_filter_reduces_candidates(self, data):
        cfg = PastisConfig(k=4, substitutes=0)
        base = find_candidate_pairs(data.store, cfg)
        filt = high_frequency_kmer_filter(data.store, cfg, 2)
        assert filt.npairs <= base.npairs
        assert filt.pair_set() <= base.pair_set()

    def test_counts_never_increase(self, data):
        cfg = PastisConfig(k=4, substitutes=0)
        base = find_candidate_pairs(data.store, cfg).sort()
        filt = high_frequency_kmer_filter(data.store, cfg, 3).sort()
        bd = {(int(i), int(j)): int(c)
              for i, j, c in zip(base.ri, base.rj, base.counts)}
        for i, j, c in zip(filt.ri, filt.rj, filt.counts):
            assert int(c) <= bd[(int(i), int(j))]

    def test_substitute_mode_runs(self, data):
        cfg = PastisConfig(k=4, substitutes=3)
        filt = high_frequency_kmer_filter(data.store, cfg, 3)
        base = find_candidate_pairs(data.store, cfg)
        assert filt.pair_set() <= base.pair_set()

    def test_moderate_threshold_keeps_most_recall(self, data):
        # dropping only the most promiscuous k-mers must preserve the bulk
        # of the true-pair candidates (the future-work hypothesis)
        cfg = PastisConfig(k=4, substitutes=0)
        base = find_candidate_pairs(data.store, cfg)
        rep = kmer_frequency_analysis(data.store, cfg.k)
        thr = max(int(rep.frequencies[0]) - 1, 2)
        filt = high_frequency_kmer_filter(data.store, cfg, thr)
        true = data.true_pairs()
        base_hits = len(base.pair_set() & true)
        filt_hits = len(filt.pair_set() & true)
        assert filt_hits >= 0.8 * base_hits

    def test_invalid_threshold(self, data):
        with pytest.raises(ValueError):
            high_frequency_kmer_filter(
                data.store, PastisConfig(k=4), 0
            )
