"""Tests for the fully distributed pipeline — above all, the paper's claim
that results are oblivious to the process count."""

import numpy as np
import pytest

from repro.bio.generate import scope_like
from repro.bio.sequences import DistributedIndex, SequenceStore
from repro.core.config import PastisConfig
from repro.core.distributed import (
    pastis_rank,
    run_pastis_distributed,
    store_to_fasta_bytes,
)
from repro.core.exchange import needed_ranges, start_exchange
from repro.core.pipeline import pastis_pipeline
from repro.mpisim.comm import run_spmd
from repro.mpisim.grid import ProcessGrid
from repro.mpisim.tracing import CommTracer


@pytest.fixture(scope="module")
def data():
    return scope_like(
        n_families=4, members_per_family=(3, 4), length_range=(40, 70),
        divergence=0.15, seed=33,
    )


class TestFastaBytes:
    def test_roundtrip(self, data):
        from repro.bio.fasta import parse_fasta_text

        raw = store_to_fasta_bytes(data.store)
        recs = parse_fasta_text(raw.decode())
        assert [r.id for r in recs] == data.store.ids
        assert [r.sequence for r in recs] == [
            data.store.sequence(i) for i in range(len(data.store))
        ]


class TestExchange:
    def test_needed_ranges_cover_row_and_col(self):
        def fn(comm):
            grid = ProcessGrid.create(comm)
            return needed_ranges(grid, comm.rank, 100)

        out = run_spmd(9, fn)
        # P5 = grid (1, 2): rows 34-66, cols 67-99 (approx thirds)
        r5 = out[5]
        assert len(r5) == 2
        assert r5[0][0] == 33 or r5[0][0] == 34  # row block of 100/3

    def test_exchange_delivers_all_needed(self, data):
        fasta = store_to_fasta_bytes(data.store)

        def fn(comm):
            from repro.bio.fasta import chunk_boundaries, read_fasta_chunk

            grid = ProcessGrid.create(comm)
            s, e = chunk_boundaries(len(fasta), comm.size)[comm.rank]
            local = SequenceStore.from_records(
                read_fasta_chunk(fasta, s, e)
            )
            counts = comm.allgather(len(local))
            index = DistributedIndex.from_counts(counts)
            ex = start_exchange(comm, grid, index, local, index.total)
            cache = ex.finish()
            for lo, hi in needed_ranges(grid, comm.rank, index.total):
                for g in range(lo, hi):
                    assert g in cache
            return len(cache)

        out = run_spmd(9, fn)
        assert all(c > 0 for c in out)

    def test_exchanged_content_correct(self, data):
        fasta = store_to_fasta_bytes(data.store)

        def fn(comm):
            from repro.bio.fasta import chunk_boundaries, read_fasta_chunk

            grid = ProcessGrid.create(comm)
            s, e = chunk_boundaries(len(fasta), comm.size)[comm.rank]
            local = SequenceStore.from_records(
                read_fasta_chunk(fasta, s, e)
            )
            counts = comm.allgather(len(local))
            index = DistributedIndex.from_counts(counts)
            ex = start_exchange(comm, grid, index, local, index.total)
            cache = ex.finish()
            return {g: bytes(v.tobytes()) for g, v in cache.items()}

        out = run_spmd(4, fn)
        for cache in out:
            for g, blob in cache.items():
                assert blob == data.store.encoded(g).tobytes()


class TestProcessObliviousness:
    """Section V: "The connections found in the PSG are oblivious to the
    number of processes used to parallelize PASTIS."""

    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_exact_kmers(self, data, p):
        cfg = PastisConfig(k=4, substitutes=0, align_mode="xd")
        ref = pastis_pipeline(data.store, cfg)
        got = run_pastis_distributed(data.store, cfg, nranks=p)
        assert got.edge_set() == ref.edge_set()
        assert np.allclose(np.sort(got.weights), np.sort(ref.weights))

    @pytest.mark.parametrize("p", [1, 4, 9])
    def test_substitute_kmers(self, data, p):
        cfg = PastisConfig(k=4, substitutes=4, align_mode="xd")
        ref = pastis_pipeline(data.store, cfg)
        got = run_pastis_distributed(data.store, cfg, nranks=p)
        assert got.edge_set() == ref.edge_set()
        assert np.allclose(np.sort(got.weights), np.sort(ref.weights))

    def test_sw_mode(self, data):
        cfg = PastisConfig(k=4, substitutes=0, align_mode="sw")
        ref = pastis_pipeline(data.store, cfg)
        got = run_pastis_distributed(data.store, cfg, nranks=4)
        assert got.edge_set() == ref.edge_set()

    def test_ck_threshold_distributed(self, data):
        cfg = PastisConfig(k=4, substitutes=0).default_ck()
        ref = pastis_pipeline(data.store, cfg)
        got = run_pastis_distributed(data.store, cfg, nranks=4)
        assert got.edge_set() == ref.edge_set()

    def test_ns_weighting_distributed(self, data):
        cfg = PastisConfig(k=4, substitutes=0, weight="ns")
        ref = pastis_pipeline(data.store, cfg)
        got = run_pastis_distributed(data.store, cfg, nranks=4)
        assert got.edge_set() == ref.edge_set()
        assert np.allclose(np.sort(got.weights), np.sort(ref.weights))

    @pytest.mark.parametrize("weight,expect_traceback",
                             [("ani", True), ("ns", False)])
    def test_align_stage_traceback_flag(self, data, monkeypatch, weight,
                                        expect_traceback):
        """Regression: every rank's align stage must run score-only under
        NS weighting — a traceback was hardcoded before, contradicting
        "NS ... cheaper because no traceback is needed"."""
        import repro.core.distributed as dist

        seen = []
        real = dist.align_batch

        def recording(tasks, *args, **kwargs):
            seen.append(kwargs["traceback"])
            return real(tasks, *args, **kwargs)

        monkeypatch.setattr(dist, "align_batch", recording)
        # pinned to the thread backend: the test observes an in-process
        # implementation detail (a monkeypatched call recorder), which
        # cannot cross the process boundary of the mp backend
        run_pastis_distributed(
            data.store,
            PastisConfig(k=4, weight=weight, comm_backend="sim"),
            nranks=4,
        )
        assert len(seen) == 4  # one batched call per rank (Fig. 11)
        assert seen == [expect_traceback] * 4


def _edge_list(graph) -> list[tuple[int, int, float]]:
    return sorted(
        zip(graph.ri.tolist(), graph.rj.tolist(), graph.weights.tolist())
    )


class TestDistributedKernels:
    """The struct SUMMA path and the object-semiring fallback must produce
    byte-identical edge lists on every grid, with and without
    substitutes."""

    @pytest.mark.parametrize("p", [1, 4, 9])
    @pytest.mark.parametrize("subs", [0, 4])
    def test_struct_equals_semiring_reference(self, data, p, subs):
        cfg = PastisConfig(k=4, substitutes=subs)
        from dataclasses import replace

        ref = run_pastis_distributed(
            data.store, replace(cfg, kernel="semiring"), nranks=p
        )
        got = run_pastis_distributed(
            data.store, replace(cfg, kernel="struct"), nranks=p
        )
        assert _edge_list(got) == _edge_list(ref)

    @pytest.mark.parametrize("p", [1, 4, 9])
    def test_substitute_injection_through_summa(self, data, p):
        """The substitute path with an externally supplied ``S``
        (``s_triples`` is not None) through SUMMA on the struct kernel
        must match the single-process semiring reference fed the same
        triples, across process counts."""
        from repro.core.overlap import (
            build_a_triples,
            build_s_triples,
            find_candidate_pairs_semiring,
        )
        from repro.core.pipeline import align_candidates
        from repro.core.graph import SimilarityGraph

        cfg = PastisConfig(k=4, substitutes=3)
        _, cols, _ = build_a_triples(data.store, cfg.k)
        present = np.unique(cols)
        s_triples = build_s_triples(
            present, cfg.k, cfg.substitutes, cfg.scoring,
            restrict_to=present,
        )
        pairs = find_candidate_pairs_semiring(data.store, cfg, s_triples)
        edges, _ = align_candidates(data.store, pairs, cfg)
        ref = SimilarityGraph.from_edges(len(data.store), edges)
        got = run_pastis_distributed(
            data.store, cfg, nranks=p, s_triples=s_triples
        )
        assert _edge_list(got) == _edge_list(ref)


#: The fixed dissection schema: identical keys on every variant, so
#: Fig.-15-style consumers can index any component without KeyError.
TIMING_COMPONENTS = ("fasta", "form A", "tr. A", "form S", "AS", "(AS)AT",
                     "sym.", "wait", "rebal.", "align")


class TestMeta:
    def test_timings_have_paper_components(self, data):
        cfg = PastisConfig(k=4, substitutes=4)
        g = run_pastis_distributed(data.store, cfg, nranks=4)
        for t in g.meta["rank_timings"]:
            assert tuple(t.keys()) == TIMING_COMPONENTS

    def test_exact_mode_emits_zero_s_components(self, data):
        """Regression: the exact-match branch used to omit the form S /
        AS / sym. components entirely, so the dissection schema differed
        between variants and consumers KeyError'd on exact runs."""
        cfg = PastisConfig(k=4, substitutes=0)
        g = run_pastis_distributed(data.store, cfg, nranks=4)
        for t in g.meta["rank_timings"]:
            assert tuple(t.keys()) == TIMING_COMPONENTS
            assert t["form S"] == 0.0
            assert t["AS"] == 0.0
            assert t["sym."] == 0.0

    def test_alignment_counts_match_candidates(self, data):
        cfg = PastisConfig(k=4, substitutes=0)
        g = run_pastis_distributed(data.store, cfg, nranks=4)
        assert g.meta["aligned_pairs"] == g.meta["candidate_pairs"]
        ref = pastis_pipeline(data.store, cfg)
        assert g.meta["aligned_pairs"] == ref.meta["aligned_pairs"]

    def test_tracer_records_traffic(self, data):
        cfg = PastisConfig(k=4, substitutes=0)
        tracer = CommTracer()
        g = run_pastis_distributed(data.store, cfg, nranks=4, tracer=tracer)
        assert tracer.total_messages > 0
        kinds = tracer.bytes_by_kind()
        assert "alltoall" in kinds  # matrix distribution
        assert "p2p" in kinds       # sequence exchange + transpose
        # traced runs persist the α–β calibration and projected comm
        # seconds next to the alignment calibration
        cc = g.meta["commcost"]
        assert cc["traced_messages"] == tracer.total_messages
        assert cc["traced_bytes"] == tracer.total_bytes
        assert cc["predicted_comm_seconds"] > 0
        assert cc["calibration"]["backend"] == "sim"


class TestCkThresholdParity:
    """Regression for the duplicated CK predicate: both pipelines now
    route through one shared ``ck_keep_mask`` helper, and the strict-``>``
    boundary must agree between them exactly."""

    def _counts(self, store, cfg):
        from repro.core.overlap import find_candidate_pairs

        return sorted(
            find_candidate_pairs(store, cfg).counts.tolist()
        )

    @pytest.mark.parametrize("offset", [-1, 0])
    def test_boundary_value_parity(self, data, offset):
        """Set the threshold exactly at (and one below) an occurring
        count: pairs sharing exactly ``t`` k-mers must drop in *both*
        pipelines, pairs at ``t + 1`` must survive in both."""
        from dataclasses import replace

        base = PastisConfig(k=4, substitutes=0)
        counts = self._counts(data.store, base)
        t = counts[len(counts) // 2] + offset  # an occurring count / one below
        cfg = replace(base, common_kmer_threshold=t)
        ref = pastis_pipeline(data.store, cfg)
        got = run_pastis_distributed(data.store, cfg, nranks=4)
        assert got.edge_set() == ref.edge_set()
        expected = sum(1 for c in counts if c > t)
        assert ref.meta["aligned_pairs"] == expected
        assert got.meta["aligned_pairs"] == expected

    def test_mask_semantics(self):
        from repro.core.overlap import ck_keep_mask

        counts = np.array([0, 1, 2, 3])
        assert ck_keep_mask(counts, 1).tolist() == [
            False, False, True, True
        ]
        assert bool(ck_keep_mask(2, 2)) is False  # boundary: == t drops


class TestAlignRebalancing:
    """The align_balance="greedy" stage: byte-identical output, stable
    meta/timing schema, and shipped-task traffic visible to the tracer."""

    @pytest.mark.parametrize("p", [1, 4, 9])
    @pytest.mark.parametrize("subs", [0, 4])
    def test_rebalanced_equals_off(self, data, p, subs):
        from dataclasses import replace

        cfg = PastisConfig(k=4, substitutes=subs)
        ref = run_pastis_distributed(data.store, cfg, nranks=p)
        got = run_pastis_distributed(
            data.store, replace(cfg, align_balance="greedy"), nranks=p
        )
        assert _edge_list(got) == _edge_list(ref)
        assert got.meta["aligned_pairs"] == ref.meta["aligned_pairs"]
        assert got.meta["candidate_pairs"] == ref.meta["candidate_pairs"]

    def test_rebalance_meta_and_timing(self, data):
        cfg = PastisConfig(k=4, substitutes=0, align_balance="greedy")
        g = run_pastis_distributed(data.store, cfg, nranks=4)
        bal = g.meta["align_balance"]
        assert bal["mode"] == "greedy"
        assert len(bal["pre_cells"]) == 4
        assert len(bal["post_cells"]) == 4
        # rebalancing conserves work, it only moves it
        assert sum(bal["pre_cells"]) == sum(bal["post_cells"])
        assert max(bal["post_cells"]) <= max(bal["pre_cells"])
        for t in g.meta["rank_timings"]:
            assert t["rebal."] >= 0.0

    def test_off_mode_meta(self, data):
        cfg = PastisConfig(k=4, substitutes=0)
        g = run_pastis_distributed(data.store, cfg, nranks=4)
        assert g.meta["align_balance"] == {"mode": "off"}
        for t in g.meta["rank_timings"]:
            assert t["rebal."] == 0.0

    def test_shipped_bytes_traced(self, data):
        cfg = PastisConfig(k=4, substitutes=0, align_balance="greedy")
        tracer = CommTracer()
        g = run_pastis_distributed(
            data.store, cfg, nranks=4, tracer=tracer
        )
        kinds = tracer.bytes_by_kind()
        if g.meta["align_balance"]["shipped_tasks"] > 0:
            assert kinds.get("rebal", 0) > 0
            assert tracer.messages_by_kind()["rebal"] > 0
        else:  # pragma: no cover - dataset always skews in practice
            assert "rebal" not in kinds
