"""Tests for semiring SpGEMM: hash, heap, and COO-join variants."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import elementwise_add
from repro.sparse.semiring import (
    ARITHMETIC,
    BOOLEAN,
    COUNTING,
    MIN_PLUS,
    Semiring,
)
from repro.sparse.spgemm import (
    spgemm,
    spgemm_coo,
    spgemm_hash,
    spgemm_heap,
    spgemm_scipy,
)


def _random_pair(seed, shape_a=(12, 9), shape_b=(9, 14), density=0.3):
    rng = np.random.default_rng(seed)
    a = sp.random(*shape_a, density=density, random_state=int(seed),
                  format="csr")
    b = sp.random(*shape_b, density=density, random_state=int(seed) + 1,
                  format="csr")
    a.data[:] = rng.integers(1, 9, len(a.data))
    b.data[:] = rng.integers(1, 9, len(b.data))
    return a, b


def _to_csr(m) -> CSRMatrix:
    return CSRMatrix.from_coo(COOMatrix.from_scipy(m))


ALL_IMPLS = [
    pytest.param(lambda a, b, s: spgemm_hash(a, b, s), id="hash"),
    pytest.param(lambda a, b, s: spgemm_heap(a, b, s), id="heap"),
    pytest.param(lambda a, b, s: spgemm(a, b, s), id="hybrid"),
    pytest.param(
        lambda a, b, s: spgemm_coo(a.to_coo(), b.to_coo(), s), id="coo-join"
    ),
]


class TestArithmetic:
    @pytest.mark.parametrize("impl", ALL_IMPLS)
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scipy(self, impl, seed):
        a, b = _random_pair(seed)
        got = impl(_to_csr(a), _to_csr(b), ARITHMETIC).to_scipy()
        ref = a @ b
        ref.eliminate_zeros()
        assert abs(got - ref).nnz == 0

    @pytest.mark.parametrize("impl", ALL_IMPLS)
    def test_empty_operands(self, impl):
        a = CSRMatrix.from_coo(COOMatrix.empty(4, 3))
        b = CSRMatrix.from_coo(COOMatrix.empty(3, 5))
        assert impl(a, b, ARITHMETIC).nnz == 0

    @pytest.mark.parametrize("impl", ALL_IMPLS)
    def test_dimension_mismatch(self, impl):
        a = CSRMatrix.from_coo(COOMatrix.empty(4, 3))
        b = CSRMatrix.from_coo(COOMatrix.empty(5, 5))
        with pytest.raises(ValueError):
            impl(a, b, ARITHMETIC)

    def test_scipy_fast_path(self):
        a, b = _random_pair(7)
        got = spgemm_scipy(_to_csr(a), _to_csr(b)).to_scipy()
        ref = a @ b
        ref.eliminate_zeros()
        assert abs(got - ref).nnz == 0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_hash_heap_agree(self, seed):
        a, b = _random_pair(seed, shape_a=(8, 6), shape_b=(6, 10))
        h1 = spgemm_hash(_to_csr(a), _to_csr(b), ARITHMETIC)
        h2 = spgemm_heap(_to_csr(a), _to_csr(b), ARITHMETIC)
        assert h1.to_dict() == h2.to_dict()


class TestSemirings:
    def test_boolean_pattern(self):
        a, b = _random_pair(3)
        got = spgemm_hash(_to_csr(a), _to_csr(b), BOOLEAN)
        ref = a @ b
        ref.eliminate_zeros()
        assert {(r, c) for r, c, _ in got} == set(
            zip(*ref.tocoo().coords)
        ) or {(r, c) for r, c, _ in got} == set(
            zip(ref.tocoo().row.tolist(), ref.tocoo().col.tolist())
        )

    def test_counting_semiring(self):
        # counting over AAT gives common-nonzero counts regardless of values
        coo = COOMatrix(3, 4, [0, 0, 1, 1, 2], [0, 1, 1, 2, 3],
                        [10, 20, 30, 40, 50])
        a = CSRMatrix.from_coo(coo)
        at = a.transpose()
        b = spgemm_hash(a, at, COUNTING).to_dict()
        assert b[(0, 1)] == 1  # share column 1
        assert b[(0, 0)] == 2
        assert (2, 0) not in b

    def test_min_plus_shortest_paths(self):
        # one step of min-plus matrix "multiplication" = path relaxation
        inf = None
        coo = COOMatrix(3, 3, [0, 0, 1], [1, 2, 2], [1, 10, 2])
        a = CSRMatrix.from_coo(coo)
        sq = spgemm_hash(a, a, MIN_PLUS).to_dict()
        assert sq[(0, 2)] == 3  # 0->1->2 beats direct 10 via multiply chain

    def test_custom_object_semiring(self):
        concat = Semiring(
            "concat", lambda a, b: a + b, lambda a, b: [(a, b)]
        )
        a = CSRMatrix.from_coo(
            COOMatrix(2, 2, [0, 0], [0, 1], ["x", "y"])
        )
        b = CSRMatrix.from_coo(
            COOMatrix(2, 1, [0, 1], [0, 0], ["u", "v"])
        )
        out = spgemm_hash(a, b, concat).to_dict()
        assert out[(0, 0)] == [("x", "u"), ("y", "v")]


class TestElementwise:
    def test_elementwise_add_merges(self):
        a = COOMatrix(2, 2, [0], [0], [1])
        b = COOMatrix(2, 2, [0, 1], [0, 1], [2, 3])
        r = elementwise_add(a, b, lambda x, y: x + y)
        assert r.to_dict() == {(0, 0): 3, (1, 1): 3}

    def test_elementwise_shape_mismatch(self):
        with pytest.raises(ValueError):
            elementwise_add(
                COOMatrix.empty(2, 2), COOMatrix.empty(3, 3), min
            )
