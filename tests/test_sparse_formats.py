"""Tests for COO, CSR, and DCSC sparse formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.dcsc import DCSCMatrix


def random_coo(rng, nrows=20, ncols=30, nnz=40) -> COOMatrix:
    rows = rng.integers(0, nrows, nnz)
    cols = rng.integers(0, ncols, nnz)
    vals = rng.integers(1, 100, nnz)
    coo = COOMatrix(nrows, ncols, rows, cols, vals)
    return coo.sum_duplicates(lambda a, b: a + b)


class TestCOO:
    def test_basic(self):
        m = COOMatrix(3, 4, [0, 2], [1, 3], [10, 20])
        assert m.shape == (3, 4)
        assert m.nnz == 2
        assert list(m) == [(0, 1, 10), (2, 3, 20)]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            COOMatrix(3, 3, [0], [1, 2], [5])

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            COOMatrix(3, 3, [3], [0], [1])
        with pytest.raises(ValueError):
            COOMatrix(3, 3, [0], [-1], [1])

    def test_empty(self):
        m = COOMatrix.empty(5, 6)
        assert m.nnz == 0
        assert m.shape == (5, 6)

    def test_transpose(self):
        m = COOMatrix(2, 3, [0, 1], [2, 0], [7, 8])
        t = m.transpose()
        assert t.shape == (3, 2)
        assert t.to_dict() == {(2, 0): 7, (0, 1): 8}

    def test_sort_stable(self):
        m = COOMatrix(3, 3, [1, 0, 1], [0, 2, 0], ["x", "y", "z"])
        s = m.sort()
        assert s.rows.tolist() == [0, 1, 1]
        assert s.vals.tolist() == ["y", "x", "z"]  # duplicates keep order

    def test_sum_duplicates(self):
        m = COOMatrix(2, 2, [0, 0, 1], [1, 1, 0], [3, 4, 5])
        r = m.sum_duplicates(lambda a, b: a + b)
        assert r.to_dict() == {(0, 1): 7, (1, 0): 5}

    def test_sum_duplicates_object_values(self):
        vals = np.empty(2, dtype=object)
        vals[0] = (1,)
        vals[1] = (2,)
        m = COOMatrix(2, 2, [0, 0], [0, 0], vals)
        r = m.sum_duplicates(lambda a, b: a + b)
        assert r.vals[0] == (1, 2)

    def test_filter(self):
        m = COOMatrix(3, 3, [0, 1, 2], [0, 1, 2], [1, 2, 3])
        f = m.filter(np.array([True, False, True]))
        assert f.nnz == 2

    def test_map_values(self):
        m = COOMatrix(2, 2, [0, 1], [1, 0], [3, 4])
        r = m.map_values(lambda v: v * 10)
        assert sorted(v for _, _, v in r) == [30, 40]

    def test_to_dict_rejects_duplicates(self):
        m = COOMatrix(2, 2, [0, 0], [1, 1], [1, 2])
        with pytest.raises(ValueError):
            m.to_dict()

    def test_scipy_roundtrip(self):
        rng = np.random.default_rng(0)
        m = random_coo(rng)
        back = COOMatrix.from_scipy(m.to_scipy())
        assert back.to_dict() == {
            k: float(v) for k, v in m.to_dict().items()
        }

    def test_huge_dimensions_ok(self):
        # hypersparse: dimensions far beyond nnz must not allocate
        m = COOMatrix(10**6, 24**6, [5], [24**6 - 1], [1])
        assert m.nnz == 1


class TestCSR:
    def test_from_coo_roundtrip(self):
        rng = np.random.default_rng(1)
        coo = random_coo(rng)
        csr = CSRMatrix.from_coo(coo)
        assert csr.nnz == coo.nnz
        assert csr.to_coo().sort().to_dict() == coo.to_dict()

    def test_row_access(self):
        coo = COOMatrix(3, 5, [1, 1, 2], [4, 0, 2], [7, 8, 9])
        csr = CSRMatrix.from_coo(coo)
        cols, vals = csr.row(1)
        assert cols.tolist() == [0, 4]
        assert vals.tolist() == [8, 7]
        cols0, _ = csr.row(0)
        assert len(cols0) == 0

    def test_row_nnz(self):
        coo = COOMatrix(3, 5, [1, 1, 2], [4, 0, 2], [7, 8, 9])
        assert CSRMatrix.from_coo(coo).row_nnz().tolist() == [0, 2, 1]

    def test_get(self):
        coo = COOMatrix(3, 5, [1], [4], [7])
        csr = CSRMatrix.from_coo(coo)
        assert csr.get(1, 4) == 7
        assert csr.get(1, 3) is None
        assert csr.get(0, 0, default=-1) == -1

    def test_transpose(self):
        rng = np.random.default_rng(2)
        coo = random_coo(rng)
        t = CSRMatrix.from_coo(coo).transpose()
        assert t.shape == (coo.ncols, coo.nrows)
        assert t.to_coo().to_dict() == {
            (c, r): v for (r, c), v in coo.to_dict().items()
        }

    def test_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1]))


class TestDCSC:
    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        coo = random_coo(rng)
        d = DCSCMatrix.from_coo(coo)
        assert d.nnz == coo.nnz
        assert d.to_coo().sort().to_dict() == coo.to_dict()

    def test_empty(self):
        d = DCSCMatrix.from_coo(COOMatrix.empty(5, 10))
        assert d.nnz == 0
        assert d.nzc == 0
        assert d.to_coo().nnz == 0

    def test_column_access(self):
        coo = COOMatrix(6, 100, [3, 1, 5], [40, 40, 7], [1, 2, 3])
        d = DCSCMatrix.from_coo(coo)
        rows, vals = d.column(40)
        assert rows.tolist() == [1, 3]
        assert vals.tolist() == [2, 1]
        rows_empty, _ = d.column(50)
        assert len(rows_empty) == 0

    def test_get(self):
        coo = COOMatrix(6, 100, [3], [40], [9])
        d = DCSCMatrix.from_coo(coo)
        assert d.get(3, 40) == 9
        assert d.get(3, 41) is None

    def test_nzc_counts_nonempty_columns(self):
        coo = COOMatrix(6, 1000, [0, 1, 2], [5, 5, 900], [1, 1, 1])
        d = DCSCMatrix.from_coo(coo)
        assert d.nzc == 2

    def test_hypersparse_memory_advantage(self):
        # the paper's motivation: nnz << ncols makes CSC pointers dominate
        coo = COOMatrix(100, 24**6, [0, 1], [123, 456789], [1, 1])
        d = DCSCMatrix.from_coo(coo)
        assert d.memory_words() < d.csc_memory_words() / 1000

    def test_iter_columns(self):
        coo = COOMatrix(6, 100, [3, 1, 5], [40, 40, 7], [1, 2, 3])
        d = DCSCMatrix.from_coo(coo)
        cols = {c: rows.tolist() for c, rows, _ in d.iter_columns()}
        assert cols == {7: [5], 40: [1, 3]}

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        coo = random_coo(rng, nrows=15, ncols=200, nnz=25)
        assert DCSCMatrix.from_coo(coo).to_coo().sort().to_dict() == (
            coo.to_dict()
        )
