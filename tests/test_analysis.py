"""Tests for :mod:`repro.analysis` — the static SPMD lint pass and the
runtime comm sanitizer.

The lint half works on seeded faults: each checker gets a small source
snippet carrying exactly the defect it exists to catch, plus a pragma'd
variant proving the allowlist works, plus a clean variant proving no
false positive — and one test asserts the real tree lints clean, which
is what keeps the CI ``lint`` job green.

The sanitizer half runs real SPMD programs on the ``sim`` and ``mp``
backends at 2 and 4 ranks: a divergent collective must raise a named
:class:`SpmdError` (instead of deadlocking into the watchdog), unmatched
sends and leaked shared-memory segments must be reported by the teardown
audit, and a full ``run_pastis_distributed`` must pass byte-identical
with the sanitizer on (zero false positives).

Every SPMD body is a module-level function so the ``mp`` backend can
pickle it under the ``spawn`` start method.
"""

from __future__ import annotations

import json
import textwrap
from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.lint import (
    CHECK_PRAGMAS,
    Violation,
    lint_paths,
    lint_source,
    lint_sources,
    main as lint_main,
)
from repro.analysis.sanitizer import payload_digest
from repro.bio.generate import scope_like
from repro.core.config import PastisConfig
from repro.core.distributed import run_pastis_distributed
from repro.mpisim.backend import SpmdError, run_spmd

#: backends the sanitizer suite runs on ("mpi" needs an mpirun launch)
BACKENDS = ("sim", "mp")


def codes(violations: list[Violation]) -> list[str]:
    return [v.code for v in violations]


def src(text: str) -> str:
    return textwrap.dedent(text)


# ---------------------------------------------------------------------------
# lint: rank-divergent collectives
# ---------------------------------------------------------------------------


class TestLintRankDivergence:
    def test_direct_rank_branch_flagged(self):
        out = lint_source(src("""
            def body(comm):
                if comm.rank == 0:
                    comm.barrier()
        """), "repro/core/x.py")
        assert codes(out) == ["rank-divergent-collective"]
        assert "barrier" in out[0].message

    def test_tainted_variable_and_while_flagged(self):
        # rank flows through a tuple unpack into the loop condition
        out = lint_source(src("""
            def body(comm):
                me, peer = comm.rank, 1 - comm.rank
                while me < 1:
                    comm.allgather(me)
                    me += 10
        """), "repro/core/x.py")
        assert codes(out) == ["rank-divergent-collective"]

    def test_uniform_branch_not_flagged(self):
        # branching on a value every rank computes identically is fine
        out = lint_source(src("""
            def body(comm, n):
                if n > 4:
                    comm.barrier()
        """), "repro/core/x.py")
        assert out == []

    def test_pragma_suppresses(self):
        out = lint_source(src("""
            def body(comm):
                if comm.rank == 0:  # spmd: rank-divergent-ok (probe)
                    comm.barrier()
        """), "repro/core/x.py")
        assert out == []

    def test_def_line_pragma_covers_whole_function(self):
        out = lint_source(src("""
            # the whole body is intentionally divergent
            # spmd: rank-divergent-ok (fault-injection helper)
            def body(comm):
                if comm.rank == 0:
                    comm.barrier()
                if comm.rank == 1:
                    comm.allgather(None)
        """), "repro/core/x.py")
        assert out == []


# ---------------------------------------------------------------------------
# lint: nondeterminism in plan code
# ---------------------------------------------------------------------------


class TestLintPlanNondeterminism:
    def test_set_iteration_flagged_in_plan_module(self):
        out = lint_source(src("""
            def plan(tasks):
                seen = {t.key for t in tasks}
                return [k for k in seen]
        """), "repro/core/balance.py")
        assert codes(out) == ["plan-nondeterminism"]

    def test_sorted_set_not_flagged(self):
        out = lint_source(src("""
            def plan(tasks):
                seen = {t.key for t in tasks}
                return sorted(seen)
        """), "repro/core/balance.py")
        assert out == []

    def test_clock_flagged_in_plan_module_only(self):
        body = src("""
            import time

            def cost():
                return time.perf_counter()
        """)
        assert codes(lint_source(body, "repro/perfmodel/x.py")) == [
            "plan-nondeterminism"
        ]
        # the same code outside a plan module is nobody's business
        assert lint_source(body, "repro/align/x.py") == []

    def test_unseeded_rng_flagged_seeded_ok(self):
        out = lint_source(src("""
            import numpy as np

            def jitter():
                return np.random.default_rng().random()

            def stable():
                return np.random.default_rng(7).random()
        """), "repro/perfmodel/x.py")
        assert codes(out) == ["plan-nondeterminism"]
        assert out[0].line == 5


# ---------------------------------------------------------------------------
# lint: per-element Python loops in hot modules
# ---------------------------------------------------------------------------


class TestLintHotLoop:
    def test_per_element_loop_flagged_in_hot_module(self):
        body = src("""
            def kernel(vals):
                out = []
                for i, v in enumerate(vals):
                    out.append(v * 2)
                return out
        """)
        assert codes(lint_source(body, "repro/sparse/spgemm.py")) == [
            "python-hot-loop"
        ]
        # the same loop in a cold module is fine
        assert lint_source(body, "repro/core/graph.py") == []

    def test_pragma_on_outer_loop_covers_nested(self):
        out = lint_source(src("""
            def kernel(rows):
                # spmd: hot-loop-ok (reference path)
                for r in rows:
                    for v in r:
                        pass
        """), "repro/align/engine.py")
        assert out == []


# ---------------------------------------------------------------------------
# lint: duplicate p2p tags and broad excepts
# ---------------------------------------------------------------------------


class TestLintTagsAndExcepts:
    def test_duplicate_tag_across_files_flagged(self):
        out = lint_sources([
            ("repro/core/a.py", "EXCHANGE_TAG = 55\n"),
            ("repro/core/b.py", "def f(c):\n    c.send(1, 0, tag=55)\n"),
        ])
        assert codes(out) == ["duplicate-p2p-tag"] * 2
        assert {v.path for v in out} == {"repro/core/a.py",
                                         "repro/core/b.py"}

    def test_same_tag_within_one_file_not_flagged(self):
        out = lint_sources([
            ("repro/core/a.py",
             "MY_TAG = 55\n\ndef f(c):\n    c.send(1, 0, tag=55)\n"),
        ])
        assert out == []

    def test_constant_named_tag_collision_resolved(self):
        # the tag rides a module constant in one file and a literal in
        # the other: the resolver must see they collide
        out = lint_sources([
            ("repro/core/a.py", src("""
                STEAL_TAG = 78

                def f(c):
                    c.send(1, 0, tag=STEAL_TAG)
            """)),
            ("repro/core/b.py",
             "def g(c):\n    c.recv(0, tag=78)\n"),
        ])
        assert codes(out) == ["duplicate-p2p-tag"] * 3
        assert any("tag=STEAL_TAG" in v.message for v in out)

    def test_shared_imported_constant_is_one_protocol(self):
        # two modules using the *same* imported constant are one
        # protocol, not a collision
        out = lint_sources([
            ("repro/core/a.py", src("""
                EXCH_TAG = 55

                def f(c):
                    c.send(1, 0, tag=EXCH_TAG)
            """)),
            ("repro/core/b.py", src("""
                from .a import EXCH_TAG

                def g(c):
                    c.recv(0, tag=EXCH_TAG)
            """)),
        ])
        assert out == []

    def test_broad_except_flagged_and_narrow_ok(self):
        out = lint_source(src("""
            def risky():
                try:
                    work()
                except Exception:
                    pass

            def careful():
                try:
                    work()
                except (ValueError, KeyError):
                    pass

            def rethrows():
                try:
                    work()
                except Exception as exc:
                    raise RuntimeError("ctx") from exc
        """), "repro/core/x.py")
        assert codes(out) == ["broad-except"]
        assert out[0].line == 5


# ---------------------------------------------------------------------------
# lint: pragma hygiene and the repo itself
# ---------------------------------------------------------------------------


class TestLintPragmasAndRepo:
    def test_unknown_pragma_flagged(self):
        out = lint_source(
            "x = 1  # spmd: tyop-ok (misspelled)\n", "repro/core/x.py"
        )
        assert codes(out) == ["unknown-pragma"]
        assert "tyop-ok" in out[0].message

    def test_every_check_has_a_pragma(self):
        assert set(CHECK_PRAGMAS) == {
            "rank-divergent-collective", "plan-nondeterminism",
            "python-hot-loop", "duplicate-p2p-tag", "broad-except",
        }

    def test_unused_lint_pragma_flagged(self):
        out = lint_source(
            "x = 1  # spmd: hot-loop-ok (stale leftover)\n",
            "repro/core/x.py",
        )
        assert codes(out) == ["unused-pragma"]
        assert "hot-loop-ok" in out[0].message

    def test_working_pragma_is_not_unused(self):
        out = lint_source(src("""
            def kernel(rows):
                for r in rows:  # spmd: hot-loop-ok (reference)
                    pass
        """), "repro/align/engine.py")
        assert out == []

    def test_verifier_pragma_parses_and_is_not_lints_business(self):
        # unmatched-send-ok belongs to the shared vocabulary (not
        # unknown), and its unused audit is owned by the verifier
        out = lint_source(
            "x = 1  # spmd: unmatched-send-ok (drained later)\n",
            "repro/core/x.py",
        )
        assert out == []

    def test_repo_lints_clean(self):
        out = lint_paths()
        assert out == [], "\n".join(v.render() for v in out)

    def test_cli_exit_codes(self, tmp_path, capsys):
        assert lint_main([]) == 0
        assert "clean" in capsys.readouterr().out
        bad = tmp_path / "divergent.py"
        bad.write_text(
            "def f(comm):\n    if comm.rank:\n        comm.barrier()\n"
        )
        assert lint_main([str(bad)]) == 1
        assert "rank-divergent-collective" in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "divergent.py"
        bad.write_text(
            "def f(comm):\n    if comm.rank:\n        comm.barrier()\n"
        )
        assert lint_main([str(bad), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.analysis.findings/v1"
        assert doc["tool"] == "lint"
        assert [f["code"] for f in doc["findings"]] == [
            "rank-divergent-collective"
        ]
        assert doc["findings"][0]["severity"] == "error"
        assert doc["counts"] == {"error": 1, "warning": 0}


# ---------------------------------------------------------------------------
# sanitizer: fingerprints
# ---------------------------------------------------------------------------


class TestPayloadDigest:
    def test_digests_are_structural(self):
        assert payload_digest(None) == "None"
        assert payload_digest(np.zeros(4, dtype=np.int64)) == \
            "ndarray[<i8](4,)"
        assert payload_digest(b"abc") == "bytes[3]"
        assert payload_digest({"a": 1, "b": 2}) == "dict[2]"
        assert payload_digest((1, "x")) == "tuple[2](int, str)"

    def test_digest_never_reads_data(self):
        a = payload_digest(np.arange(8))
        b = payload_digest(np.arange(8) * 1000)
        assert a == b


# ---------------------------------------------------------------------------
# sanitizer: SPMD bodies (module-level for the spawn start method)
# ---------------------------------------------------------------------------


def _clean_body(comm):
    """A representative mix: collectives, a split with subcomm traffic,
    and matched p2p — must pass the sanitizer silently."""
    total = comm.allreduce(comm.rank, lambda a, b: a + b)
    row = comm.split(comm.rank % 2, key=comm.rank)
    row_sum = sum(row.allgather(comm.rank))
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    comm.send(np.arange(4096, dtype=np.int64), nxt, tag=5)
    arr = comm.recv(source=prv, tag=5)
    comm.barrier()
    return (total, row_sum, int(arr[7]))


def _diverge_body(comm):
    comm.bcast("warmup", root=0)
    if comm.rank == comm.size - 1:  # spmd: rank-divergent-ok (seeded fault)
        comm.barrier()
    else:
        comm.allgather(comm.rank)
    return comm.rank


def _unmatched_body(comm):
    if comm.rank == 0:  # spmd: rank-divergent-ok (seeded fault)
        comm.send("orphan", 1, tag=99)
    comm.barrier()
    return comm.rank


def _leak_body(comm):
    # a >= 8 KiB ndarray rides the mpcomm shared-memory path; nobody
    # receives it, so the segment is created and never unlinked
    if comm.rank == 0:  # spmd: rank-divergent-ok (seeded fault)
        comm.send(np.zeros(8192, dtype=np.int64), 1, tag=99)
    comm.barrier()
    return comm.rank


def _pipeline_body_not_needed():  # pragma: no cover
    pass


# ---------------------------------------------------------------------------
# sanitizer: behaviour
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestSanitizerRuntime:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_clean_run_matches_unsanitized(self, backend, nranks):
        bare = run_spmd(nranks, _clean_body, comm_backend=backend,
                        timeout=60.0)
        checked = run_spmd(nranks, _clean_body, comm_backend=backend,
                           comm_sanitize=True, timeout=60.0)
        assert checked == bare

    @pytest.mark.parametrize("nranks", [2, 4])
    def test_mismatched_collective_raises_named_error(
            self, backend, nranks):
        with pytest.raises(SpmdError) as exc:
            run_spmd(nranks, _diverge_body, comm_backend=backend,
                     comm_sanitize=True, timeout=60.0)
        msg = str(exc.value)
        assert "comm sanitizer: collective mismatch" in msg
        # runtime findings carry the same code the static tools use
        assert "[rank-divergent-collective]" in msg
        assert "barrier" in msg and "allgather" in msg
        if nranks == 4:
            # with a clear majority the lone diverger is named
            assert "world rank(s) 3 diverged" in msg

    def test_unmatched_send_reported_at_teardown(self, backend):
        with pytest.raises(SpmdError) as exc:
            run_spmd(4, _unmatched_body, comm_backend=backend,
                     comm_sanitize=True, timeout=60.0)
        msg = str(exc.value)
        assert "teardown audit failed" in msg
        assert "[unmatched-send]" in msg
        assert ("1 unmatched send(s) to world rank 1 "
                "(comm 'world', tag 99) from rank(s) [0]") in msg

    def test_unsanitized_orphan_send_passes(self, backend):
        # the same program is silently accepted without the sanitizer —
        # this asymmetry is the tool's reason to exist
        out = run_spmd(4, _unmatched_body, comm_backend=backend,
                       timeout=60.0)
        assert out == [0, 1, 2, 3]


class TestSanitizerShmAudit:
    def test_leaked_segment_reported_on_mp(self):
        with pytest.raises(SpmdError) as exc:
            run_spmd(2, _leak_body, comm_backend="mp",
                     comm_sanitize=True, timeout=60.0)
        msg = str(exc.value)
        assert "[shm-leak]" in msg
        assert "leaked shared-memory segment(s)" in msg
        assert "created by rank(s) [0]" in msg
        # the orphan send is reported by the same audit
        assert "unmatched send(s)" in msg

    def test_received_segments_do_not_leak(self):
        # _clean_body ships a 32 KiB ndarray ring through shared memory
        # and every segment is consumed: the audit must stay silent
        out = run_spmd(2, _clean_body, comm_backend="mp",
                       comm_sanitize=True, timeout=60.0)
        assert len(out) == 2


# ---------------------------------------------------------------------------
# sanitizer: zero false positives on the real pipeline
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pipeline_data():
    return scope_like(
        n_families=3, members_per_family=(3, 3), length_range=(40, 60),
        divergence=0.15, seed=11,
    )


class TestSanitizerOnPipeline:
    def test_full_distributed_run_byte_identical(self, pipeline_data):
        store = pipeline_data.store
        base = PastisConfig(k=5, comm_backend="sim", comm_sanitize=False)
        graph = run_pastis_distributed(store, base, nranks=4)
        checked = run_pastis_distributed(
            store, replace(base, comm_sanitize=True), nranks=4
        )
        assert np.array_equal(checked.ri, graph.ri)
        assert np.array_equal(checked.rj, graph.rj)
        assert np.array_equal(checked.weights, graph.weights)


# ---------------------------------------------------------------------------
# knob threading: CLI flag and environment default
# ---------------------------------------------------------------------------


class TestSanitizeKnob:
    def test_cli_flag_sets_config(self):
        from repro.cli import build_parser, config_from_args

        on = config_from_args(build_parser().parse_args(
            ["in.fa", "-o", "out.tsv", "--comm-sanitize"]
        ))
        assert on.comm_sanitize is True

    def test_env_default(self, monkeypatch):
        from repro.cli import build_parser, config_from_args

        monkeypatch.setenv("REPRO_COMM_SANITIZE", "1")
        cfg = config_from_args(build_parser().parse_args(
            ["in.fa", "-o", "out.tsv"]
        ))
        assert cfg.comm_sanitize is True
        monkeypatch.setenv("REPRO_COMM_SANITIZE", "0")
        cfg = config_from_args(build_parser().parse_args(
            ["in.fa", "-o", "out.tsv"]
        ))
        assert cfg.comm_sanitize is False
