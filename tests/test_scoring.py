"""Tests for scoring matrices and the expense matrix E."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bio.alphabet import ALPHABET_SIZE, BASE_TO_INDEX, PROTEIN_ALPHABET
from repro.bio.scoring import (
    BLOSUM45,
    BLOSUM62,
    BLOSUM80,
    PAM250,
    ExpenseMatrix,
    ScoringMatrix,
    get_matrix,
)

ALL = [BLOSUM45, BLOSUM62, BLOSUM80, PAM250]


class TestMatrices:
    @pytest.mark.parametrize("m", ALL, ids=lambda m: m.name)
    def test_symmetric(self, m):
        assert (m.matrix == m.matrix.T).all()

    @pytest.mark.parametrize("m", ALL, ids=lambda m: m.name)
    def test_shape(self, m):
        assert m.matrix.shape == (24, 24)

    def test_blosum62_known_values(self):
        # Fig. 6 of the paper
        assert BLOSUM62.score("A", "A") == 4
        assert BLOSUM62.score("C", "C") == 9
        assert BLOSUM62.score("W", "W") == 11
        assert BLOSUM62.score("A", "S") == 1
        assert BLOSUM62.score("A", "C") == 0
        assert BLOSUM62.score("C", "M") == -1
        assert BLOSUM62.score("*", "*") == 1
        assert BLOSUM62.score("A", "*") == -4

    def test_diagonal_positive_for_canonical(self):
        diag = np.diag(BLOSUM62.matrix)[:20]
        assert (diag > 0).all()

    def test_score_indices(self):
        i, j = BASE_TO_INDEX["A"], BASE_TO_INDEX["S"]
        assert BLOSUM62.score_indices(i, j) == 1

    def test_self_score(self):
        seq = np.array([BASE_TO_INDEX[c] for c in "AAC"])
        # paper: AAC exact match scores 4 + 4 + 9 = 17
        assert BLOSUM62.self_score(seq) == 17

    def test_kmer_match_score_paper_examples(self):
        aac = np.array([BASE_TO_INDEX[c] for c in "AAC"])
        sac = np.array([BASE_TO_INDEX[c] for c in "SAC"])
        asc = np.array([BASE_TO_INDEX[c] for c in "ASC"])
        ssc = np.array([BASE_TO_INDEX[c] for c in "SSC"])
        assert BLOSUM62.kmer_match_score(aac, aac) == 17
        assert BLOSUM62.kmer_match_score(aac, sac) == 14
        assert BLOSUM62.kmer_match_score(aac, asc) == 14
        assert BLOSUM62.kmer_match_score(aac, ssc) == 11

    def test_kmer_match_length_mismatch(self):
        with pytest.raises(ValueError):
            BLOSUM62.kmer_match_score(np.array([0]), np.array([0, 1]))

    def test_get_matrix(self):
        assert get_matrix("blosum62") is BLOSUM62
        assert get_matrix("BLOSUM45") is BLOSUM45
        with pytest.raises(KeyError):
            get_matrix("blosum999")

    def test_asymmetric_rejected(self):
        bad = np.zeros((24, 24), dtype=np.int32)
        bad[0, 1] = 5
        with pytest.raises(ValueError, match="symmetric"):
            ScoringMatrix("bad", bad)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            ScoringMatrix("bad", np.zeros((20, 20), dtype=np.int32))


class TestExpenseMatrix:
    @pytest.fixture
    def E(self):
        return BLOSUM62.expense_matrix()

    def test_rows_ascending(self, E):
        assert (np.diff(E.costs, axis=1) >= 0).all()

    def test_identity_cost_zero(self, E):
        # substituting a base by itself always costs exactly 0
        for i in range(ALPHABET_SIZE):
            pos = np.nonzero(E.bases[i] == i)[0][0]
            assert E.costs[i, pos] == 0

    def test_canonical_identity_first(self, E):
        # for the 20 canonical residues the diagonal is the row maximum,
        # so the zero-cost identity sorts first
        for i in range(20):
            assert E.costs[i, 0] == 0
            assert E.bases[i, 0] == i

    def test_paper_cheapest_substitution_for_A(self, E):
        # paper: "the base A can be substituted with S for the least
        # amount of penalty" -> E[A][1] == (3, S)
        cost, base = E.cheapest_substitution(BASE_TO_INDEX["A"])
        assert cost == 3
        assert PROTEIN_ALPHABET[base] == "S"

    def test_paper_first_row_values(self, E):
        # paper example: E[A] begins (0,A), (3,S), (4,C), (4,G), ...
        a = BASE_TO_INDEX["A"]
        assert E.costs[a, 0] == 0
        assert E.costs[a, 1] == 3
        assert E.costs[a, 2] == 4
        assert E.costs[a, 3] == 4

    def test_ambiguity_row_can_go_negative(self, E):
        # X scores -1 against itself but 0 against S: substitution "gains"
        x = BASE_TO_INDEX["X"]
        assert E.costs[x, 0] < 0

    def test_substitution_cost_consistency(self, E):
        c = BLOSUM62.matrix
        for i in (0, 4, 22):
            for j in (0, 1, 5):
                assert E.substitution_cost(i, j) == c[i, i] - c[i, j]

    @given(st.integers(0, 23), st.integers(0, 23))
    def test_cost_matches_definition(self, i, j):
        E = BLOSUM62.expense_matrix()
        c = BLOSUM62.matrix
        assert E.substitution_cost(i, j) == int(c[i, i] - c[i, j])

    def test_every_base_present_per_row(self, E):
        for i in range(ALPHABET_SIZE):
            assert sorted(E.bases[i].tolist()) == list(range(ALPHABET_SIZE))
