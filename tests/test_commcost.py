"""Tests for the static communication-cost analyzer
(:mod:`repro.analysis.commcost`).

Mirrors the verifier suite's structure: seeded faults that lint and the
verifier *provably miss* (each fixture is asserted clean under both
before commcost is asserted to flag it — that delta is the tool's
reason to exist), the symbolic-extraction edge cases (payloads a helper
call deep, dimensions from imported constants, unknown fallbacks that
are enumerated rather than dropped), the closed forms in the grid
symbols, the pragma/baseline suppression surfaces, and the two
whole-repo gates: the shipped tree is commcost-clean and the ``--check``
prediction agrees with the runtime tracer on the smoke pipeline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.commcost import (
    COMMCOST_SOLE_CODES,
    COST_SCHEMA,
    SPLIT_FINGERPRINT_BYTES,
    SYM_P,
    SYM_Q,
    SizeExpr,
    analyze_sources,
    main as commcost_main,
    normalize_comm_label,
    run_check,
)
from repro.analysis.lint import lint_sources, read_tree
from repro.analysis.report import FINDING_CODES, load_baseline
from repro.analysis.verify import verify_sources
from repro.mpisim.tracing import ARRAY_HEADER_BYTES

REPO_ROOT = Path(__file__).resolve().parents[1]


def src(text: str) -> str:
    return textwrap.dedent(text)


def codes(findings) -> list[str]:
    return [f.code for f in findings]


def cost_of(named, entry):
    cc, _findings = analyze_sources(named)
    return cc.entry_cost(entry)


def groups_at(cost, p):
    """Evaluated ``(comm, op) -> (msgs, bytes)`` for resolved groups."""
    out = {}
    for key, (msgs, nbytes) in cost.groups().items():
        if msgs.resolved and nbytes.resolved:
            out[key] = (msgs.evaluate(p), nbytes.evaluate(p))
    return out


# ---------------------------------------------------------------------------
# symbolic size expressions
# ---------------------------------------------------------------------------


class TestSizeExpr:

    def test_algebra_and_evaluation(self):
        p = SizeExpr.sym(SYM_P)
        expr = p * (p - SizeExpr.const(1))       # p^2 - p
        assert expr.evaluate(4) == 12
        assert expr.resolved

    def test_q_is_sqrt_p(self):
        q = SizeExpr.sym(SYM_Q)
        assert (q * q * q).evaluate(4) == pytest.approx(8)
        assert SizeExpr.sym(SYM_P).sqrt() == q
        assert SizeExpr.const(9).sqrt() == SizeExpr.const(3)
        assert not SizeExpr.const(10).sqrt().resolved

    def test_family_count_division(self):
        p, q = SizeExpr.sym(SYM_P), SizeExpr.sym(SYM_Q)
        assert p.div(q) == q
        assert SizeExpr.const(12).div(SizeExpr.const(4)) == \
            SizeExpr.const(3)
        assert not q.div(p).resolved

    def test_unknowns_propagate_and_dedupe(self):
        u = SizeExpr.unknown("reason")
        mixed = SizeExpr.const(5) + u + u
        assert not mixed.resolved
        assert mixed.unknowns == ("reason",)
        # the resolved part survives alongside the unknown
        assert mixed.evaluate(4) == 5
        assert "?" in mixed.render()

    def test_render_polynomials(self):
        q = SizeExpr.sym(SYM_Q)
        expr = q * q * q - q * q
        assert expr.render() == "q^3 - q^2"


class TestNormalizeLabel:

    def test_world_unchanged(self):
        assert normalize_comm_label("world") == "world"

    def test_color_collapsed(self):
        assert normalize_comm_label("world/0.1") == "world/0.*"
        assert normalize_comm_label("world/1.0") == "world/1.*"

    def test_nested_splits(self):
        assert normalize_comm_label("world/1.2/0.3") == \
            "world/1.*/0.*"


# ---------------------------------------------------------------------------
# symbolic extraction
# ---------------------------------------------------------------------------


class TestExtraction:

    def test_payload_resolved_through_helper_call(self):
        named = [("repro/a.py", src("""
            import numpy as np

            N = 64

            def make(n):
                return np.zeros((n, n), dtype=np.float64)

            def body(comm):
                comm.bcast(make(N), root=0)
        """))]
        cost = cost_of(named, "repro.a.body")
        got = groups_at(cost, 4)
        per = 64 * 64 * 8 + ARRAY_HEADER_BYTES
        assert got[("world", "bcast")] == (3, 3 * per)
        assert cost.unknowns == ()

    def test_dimension_from_imported_constant(self):
        named = [
            ("repro/consts.py", "WIDTH = 128\n"),
            ("repro/b.py", src("""
                import numpy as np
                from repro.consts import WIDTH

                def body(comm):
                    comm.allgather(np.zeros(WIDTH, dtype=np.int64))
            """)),
        ]
        cost = cost_of(named, "repro.b.body")
        got = groups_at(cost, 4)
        per = 128 * 8 + ARRAY_HEADER_BYTES
        assert got[("world", "allgather")] == (12, 12 * per)

    def test_unresolvable_payload_is_enumerated_not_dropped(self):
        named = [("repro/c.py", src("""
            def body(comm, data):
                comm.bcast(data, root=0)
        """))]
        cost = cost_of(named, "repro.c.body")
        (msgs, nbytes), = [v for k, v in cost.groups().items()
                           if k == ("world", "bcast")]
        assert msgs.resolved and msgs.evaluate(4) == 3
        assert not nbytes.resolved
        assert any("data" in u for u in cost.unknowns)

    def test_grid_closed_form_and_split_traffic(self):
        named = [("repro/g.py", src("""
            import numpy as np

            class ProcessGrid:
                @classmethod
                def create(cls, comm):
                    raise NotImplementedError

            def body(comm):
                grid = ProcessGrid.create(comm)
                for k in range(grid.q):
                    grid.row_comm.bcast(
                        np.zeros(16, dtype=np.float64), root=k)
        """))]
        cost = cost_of(named, "repro.g.body")
        got = groups_at(cost, 4)
        # two splits, each an allgather of the fingerprint tuple
        assert got[("world", "allgather")] == \
            (24, 24 * SPLIT_FINGERPRINT_BYTES)
        # q bcast rounds over the q-member, q-communicator row family
        per = 16 * 8 + ARRAY_HEADER_BYTES
        assert got[("world/0.*", "bcast")] == (4, 4 * per)
        (msgs, _), = [v for k, v in cost.groups().items()
                      if k == ("world/0.*", "bcast")]
        assert msgs.render() == "q^3 - q^2"

    def test_constant_color_split_keeps_world_shape(self):
        named = [("repro/s.py", src("""
            import numpy as np

            def body(comm):
                subcomm = comm.split(color=0, key=comm.rank)
                subcomm.bcast(np.zeros(4, dtype=np.float64), root=0)
        """))]
        cost = cost_of(named, "repro.s.body")
        got = groups_at(cost, 4)
        per = 4 * 8 + ARRAY_HEADER_BYTES
        assert got[("world/0.*", "bcast")] == (3, 3 * per)

    def test_allreduce_traced_as_allgather(self):
        named = [("repro/r.py", src("""
            import numpy as np

            def body(comm):
                comm.allreduce(np.ones(8, dtype=np.float64),
                               lambda a, b: a + b)
        """))]
        cost = cost_of(named, "repro.r.body")
        got = groups_at(cost, 4)
        per = 8 * 8 + ARRAY_HEADER_BYTES
        assert got[("world", "allgather")] == (12, 12 * per)

    def test_rank_guarded_traffic_becomes_unknown(self):
        named = [("repro/u.py", src("""
            import numpy as np

            def body(comm):
                if comm.rank == 0:
                    comm.send(np.zeros(4, dtype=np.float64), dest=1,
                              tag=3)
                else:
                    comm.recv(source=0, tag=3)
        """))]
        cost = cost_of(named, "repro.u.body")
        (msgs, _nbytes), = [v for k, v in cost.groups().items()
                            if k == ("world", "send")]
        assert not msgs.resolved
        assert any("conditional" in u for u in cost.unknowns)


# ---------------------------------------------------------------------------
# seeded faults: each caught by commcost, provably missed by lint+verify
# ---------------------------------------------------------------------------


REDUNDANT = [("repro/f1.py", src("""
    CONFIG = 7

    def body(comm):
        comm.bcast(CONFIG, root=0)
"""))]

GRID_LOOP = [("repro/f2.py", src("""
    import numpy as np

    def body(comm):
        buf = np.zeros(8, dtype=np.float64)
        for i in range(comm.size):
            comm.bcast(buf, root=0)
"""))]

PER_ELEMENT = [("repro/f3.py", src("""
    import numpy as np

    def body(comm):
        parts = [np.zeros(4, dtype=np.float64)
                 for _ in range(comm.size)]
        if comm.rank == 0:
            for part in parts:
                comm.send(part, dest=1, tag=5)
        else:
            comm.recv(source=0, tag=5)
"""))]

ENVELOPE = [("repro/f4.py", src("""
    import numpy as np

    def body(comm):
        if comm.rank == 0:
            comm.send([np.zeros(4), np.ones(4)], dest=1, tag=9)
        else:
            comm.recv(source=0, tag=9)
"""))]


class TestSeededFaults:

    @pytest.mark.parametrize("named,code", [
        (REDUNDANT, "redundant-collective"),
        (GRID_LOOP, "grid-loop-collective"),
        (PER_ELEMENT, "per-element-send"),
        (ENVELOPE, "pickled-envelope"),
    ], ids=["redundant", "grid-loop", "per-element", "envelope"])
    def test_commcost_catches_what_lint_and_verify_miss(
            self, named, code):
        _cc, findings = analyze_sources(named)
        assert code in codes(findings)
        assert code not in [v.code for v in lint_sources(named)]
        assert code not in codes(verify_sources(named))

    def test_loop_dependent_root_passes(self):
        # SUMMA's rotating root: the collective is loop-dependent
        named = [("repro/ok.py", src("""
            import numpy as np

            def body(comm):
                buf = np.zeros(8, dtype=np.float64)
                for t in range(comm.size):
                    comm.bcast(buf, root=t)
        """))]
        _cc, findings = analyze_sources(named)
        assert "grid-loop-collective" not in codes(findings)

    def test_constant_trip_loop_passes(self):
        named = [("repro/ok2.py", src("""
            import numpy as np

            def body(comm):
                buf = np.zeros(8, dtype=np.float64)
                for _ in range(3):
                    comm.bcast(buf, root=0)
        """))]
        _cc, findings = analyze_sources(named)
        assert "grid-loop-collective" not in codes(findings)

    def test_packed_send_passes_envelope_check(self):
        # a helper that flattens into one ndarray is the fixed form
        named = [("repro/ok3.py", src("""
            import numpy as np

            def _pack(parts):
                return np.concatenate(parts)

            def body(comm):
                if comm.rank == 0:
                    comm.send(_pack([np.zeros(4)]), dest=1, tag=9)
                else:
                    comm.recv(source=0, tag=9)
        """))]
        _cc, findings = analyze_sources(named)
        assert "pickled-envelope" not in codes(findings)

    def test_rank_conditional_bcast_not_redundant(self):
        # taint has no control-dependence: a value computed on rank 0
        # only *must* still be broadcast — the analyzer must not key
        # the redundancy check on untaintedness
        named = [("repro/ok4.py", src("""
            def expensive():
                return 42

            def body(comm):
                model = None
                if comm.rank == 0:
                    model = expensive()
                model = comm.bcast(model, root=0)
                return model
        """))]
        _cc, findings = analyze_sources(named)
        assert "redundant-collective" not in codes(findings)


# ---------------------------------------------------------------------------
# pragmas and baselines
# ---------------------------------------------------------------------------


class TestSuppression:

    def test_pragma_suppresses_commcost_finding(self):
        named = [("repro/p1.py", src("""
            CONFIG = 7

            def body(comm):
                # spmd: redundant-collective-ok (handshake by design)
                comm.bcast(CONFIG, root=0)
        """))]
        _cc, findings = analyze_sources(named)
        assert codes(findings) == []

    def test_unused_commcost_pragma_reported_here_not_by_verify(self):
        named = [("repro/p2.py", src("""
            def body(comm):
                # spmd: pickled-envelope-ok (stale)
                comm.barrier()
        """))]
        _cc, findings = analyze_sources(named)
        assert codes(findings) == ["unused-pragma"]
        # the audit of commcost-only pragmas belongs to this tool
        assert "unused-pragma" not in codes(verify_sources(named))

    def test_sole_codes_cover_the_four_new_checks(self):
        assert COMMCOST_SOLE_CODES == {
            "redundant-collective", "grid-loop-collective",
            "per-element-send", "pickled-envelope",
        }
        for code in COMMCOST_SOLE_CODES:
            assert FINDING_CODES[code].tools == ("commcost",)
            assert FINDING_CODES[code].pragma is not None


class TestCli:

    def _fixture(self, tmp_path: Path) -> Path:
        f = tmp_path / "m.py"
        f.write_text(src("""
            CONFIG = 7

            def body(comm):
                comm.bcast(CONFIG, root=0)
        """), encoding="utf-8")
        return f

    def test_exit_codes_and_baseline_flow(self, tmp_path, capsys):
        f = self._fixture(tmp_path)
        assert commcost_main([str(f)]) == 1
        base = tmp_path / "base.json"
        assert commcost_main([str(f),
                              "--write-baseline", str(base)]) == 0
        assert load_baseline(base)
        assert commcost_main([str(f), "--baseline", str(base)]) == 0
        capsys.readouterr()

    def test_json_document_shape(self, tmp_path, capsys):
        f = self._fixture(tmp_path)
        commcost_main([str(f), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == COST_SCHEMA
        assert doc["tool"] == "commcost"
        assert doc["counts"]["warning"] == 1
        entries = [e["entry"] for e in doc["entries"]]
        assert len(entries) == 1 and entries[0].endswith("m.body")
        assert doc["findings"][0]["code"] == "redundant-collective"

    def test_output_artifact_written(self, tmp_path, capsys):
        f = self._fixture(tmp_path)
        out = tmp_path / "SPMD_commcost.json"
        commcost_main([str(f), "--output", str(out)])
        capsys.readouterr()
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["schema"] == COST_SCHEMA


# ---------------------------------------------------------------------------
# whole-repo gates
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def repo_analysis():
    return analyze_sources(read_tree(None))


class TestRepoGates:

    def test_repo_is_commcost_clean(self, repo_analysis):
        _cc, findings = repo_analysis
        assert findings == [], [f.render() for f in findings]

    def test_smoke_entry_fully_resolved(self, repo_analysis):
        cc, _ = repo_analysis
        cost = cc.entry_cost("repro.core.smoke.smoke_rank")
        assert cost.unknowns == ()
        assert cost.msgs.resolved and cost.nbytes.resolved
        # five op groups: splits+allgather+allreduce+exscan fold into
        # world/allgather; two bcast families; alltoall; the ring send
        assert set(cost.groups()) == {
            ("world", "allgather"), ("world", "alltoall"),
            ("world", "send"), ("world/0.*", "bcast"),
            ("world/1.*", "bcast"),
        }

    def test_check_agrees_with_runtime_tracer(self, repo_analysis):
        cc, _ = repo_analysis
        check = run_check(cc, backend="sim", nranks=4, tolerance=0.25)
        assert check["ok"], check
        by_status = {}
        for row in check["groups"]:
            by_status.setdefault(row["status"], []).append(row)
        assert len(by_status.get("ok", ())) == 5
        assert "mismatch" not in by_status
        assert "untracked" not in by_status
        # the smoke fixture resolves completely: exact agreement
        for row in by_status["ok"]:
            assert row["relative_error"]["messages"] == 0
            assert row["relative_error"]["bytes"] == 0
        assert check["predicted_seconds"] > 0
