"""Tests for SequenceStore and DistributedIndex."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bio.fasta import FastaRecord
from repro.bio.sequences import DistributedIndex, SequenceStore


class TestSequenceStore:
    def test_basic(self):
        s = SequenceStore(["AVG", "KRAVGP"], ids=["a", "b"])
        assert len(s) == 2
        assert s.total_residues == 9
        assert s.length(0) == 3
        assert s.length(1) == 6
        assert s.sequence(0) == "AVG"
        assert s.sequence(1) == "KRAVGP"
        assert s.ids == ["a", "b"]

    def test_default_ids(self):
        s = SequenceStore(["AVG"])
        assert s.ids == ["seq0"]

    def test_lengths_array(self):
        s = SequenceStore(["AVG", "KR", "WWWW"])
        assert s.lengths().tolist() == [3, 2, 4]

    def test_encoded_is_view(self):
        s = SequenceStore(["AVG", "KR"])
        enc = s.encoded(1)
        assert enc.base is s.buffer or enc.base.base is s.buffer

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            SequenceStore(["AVG", ""])

    def test_id_length_mismatch(self):
        with pytest.raises(ValueError):
            SequenceStore(["AVG"], ids=["a", "b"])

    def test_iter(self):
        s = SequenceStore(["AVG", "KR"])
        parts = list(s)
        assert len(parts) == 2
        assert len(parts[0]) == 3

    def test_subset(self):
        s = SequenceStore(["AVG", "KR", "WWWW"], ids=["a", "b", "c"])
        sub = s.subset([2, 0])
        assert sub.ids == ["c", "a"]
        assert sub.sequence(0) == "WWWW"
        assert sub.sequence(1) == "AVG"

    def test_from_records(self):
        recs = [FastaRecord("x", "x d", "AVG"), FastaRecord("y", "y", "KR")]
        s = SequenceStore.from_records(recs)
        assert s.ids == ["x", "y"]
        assert s.sequence(1) == "KR"

    def test_from_encoded_roundtrip(self):
        s1 = SequenceStore(["AVG", "KR"])
        s2 = SequenceStore.from_encoded(s1.buffer, s1.offsets, s1.ids)
        assert s2.sequence(0) == "AVG"
        assert s2.sequence(1) == "KR"

    def test_from_encoded_bad_offsets(self):
        s1 = SequenceStore(["AVG"])
        with pytest.raises(ValueError):
            SequenceStore.from_encoded(s1.buffer, s1.offsets, ["a", "b"])


class TestDistributedIndex:
    def test_basic(self):
        idx = DistributedIndex.from_counts([3, 0, 2, 5])
        assert idx.total == 10
        assert idx.nranks == 4
        assert idx.rank_range(0) == (0, 3)
        assert idx.rank_range(1) == (3, 3)
        assert idx.rank_range(3) == (5, 10)

    def test_owner(self):
        idx = DistributedIndex.from_counts([3, 0, 2, 5])
        assert idx.owner(0) == 0
        assert idx.owner(2) == 0
        assert idx.owner(3) == 2  # rank 1 owns nothing
        assert idx.owner(4) == 2
        assert idx.owner(9) == 3

    def test_owner_out_of_range(self):
        idx = DistributedIndex.from_counts([2, 2])
        with pytest.raises(IndexError):
            idx.owner(4)
        with pytest.raises(IndexError):
            idx.owner(-1)

    def test_owners_vectorised(self):
        idx = DistributedIndex.from_counts([3, 0, 2, 5])
        gids = np.array([0, 3, 4, 9])
        assert idx.owners(gids).tolist() == [0, 2, 2, 3]

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            DistributedIndex.from_counts([3, -1])

    def test_local_global_roundtrip(self):
        idx = DistributedIndex.from_counts([3, 0, 2, 5])
        for g in range(idx.total):
            r, l = idx.to_local(g)
            assert idx.to_global(r, l) == g

    def test_to_global_out_of_range(self):
        idx = DistributedIndex.from_counts([3, 2])
        with pytest.raises(IndexError):
            idx.to_global(0, 3)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=10))
    def test_property_owner_consistent(self, counts):
        idx = DistributedIndex.from_counts(counts)
        for g in range(idx.total):
            r = idx.owner(g)
            lo, hi = idx.rank_range(r)
            assert lo <= g < hi
