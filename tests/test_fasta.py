"""Tests for FASTA I/O and the byte-balanced parallel chunk reader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.fasta import (
    FastaRecord,
    chunk_boundaries,
    parse_fasta_text,
    read_fasta,
    read_fasta_chunk,
    read_fasta_parallel,
    write_fasta,
)

SIMPLE = """>seq1 first protein
AVGDMI
>seq2
KRAVG
PDMIW
>seq3 third
WWWW
"""


class TestParsing:
    def test_parse_basic(self):
        recs = parse_fasta_text(SIMPLE)
        assert [r.id for r in recs] == ["seq1", "seq2", "seq3"]
        assert recs[0].sequence == "AVGDMI"
        assert recs[1].sequence == "KRAVGPDMIW"  # multi-line joined
        assert recs[0].description == "seq1 first protein"

    def test_parse_lowercase_uppercased(self):
        recs = parse_fasta_text(">x\navg\n")
        assert recs[0].sequence == "AVG"

    def test_parse_no_header_raises(self):
        with pytest.raises(ValueError):
            parse_fasta_text("AVGDMI\n")

    def test_parse_empty(self):
        assert parse_fasta_text("") == []

    def test_record_len(self):
        assert len(FastaRecord("a", "a", "AVG")) == 3

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "t.fasta"
        n = write_fasta(path, [("a desc", "AVGDMI"), ("b", "KR")])
        assert n == 2
        recs = read_fasta(path)
        assert recs[0].id == "a"
        assert recs[0].description == "a desc"
        assert recs[0].sequence == "AVGDMI"
        assert recs[1].sequence == "KR"

    def test_write_line_width(self, tmp_path):
        path = tmp_path / "t.fasta"
        write_fasta(path, [("a", "A" * 130)], line_width=60)
        lines = path.read_text().splitlines()
        assert lines[1] == "A" * 60
        assert lines[3] == "A" * 10


class TestChunking:
    def test_boundaries_cover_everything(self):
        bounds = chunk_boundaries(100, 7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (s1, e1), (s2, e2) in zip(bounds, bounds[1:]):
            assert e1 == s2

    def test_boundaries_balanced(self):
        bounds = chunk_boundaries(100, 7)
        sizes = [e - s for s, e in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_boundaries_invalid(self):
        with pytest.raises(ValueError):
            chunk_boundaries(10, 0)

    def test_chunks_partition_records(self):
        data = SIMPLE.encode()
        for nchunks in (1, 2, 3, 5, 10):
            chunks = [
                read_fasta_chunk(data, s, e)
                for s, e in chunk_boundaries(len(data), nchunks)
            ]
            merged = [r for c in chunks for r in c]
            assert [r.id for r in merged] == ["seq1", "seq2", "seq3"]
            assert [r.sequence for r in merged] == [
                "AVGDMI", "KRAVGPDMIW", "WWWW"
            ]

    def test_small_overlap_still_completes_records(self):
        data = (">a\n" + "A" * 500 + "\n>b\nKR\n").encode()
        chunks = [
            read_fasta_chunk(data, s, e, overlap=16)
            for s, e in chunk_boundaries(len(data), 4)
        ]
        merged = [r for c in chunks for r in c]
        assert [r.id for r in merged] == ["a", "b"]
        assert merged[0].sequence == "A" * 500

    def test_chunk_out_of_range(self):
        data = SIMPLE.encode()
        assert read_fasta_chunk(data, len(data) + 5, len(data) + 10) == []

    def test_parallel_file(self, tmp_path):
        path = tmp_path / "t.fasta"
        write_fasta(path, [(f"s{i}", "AVG" * (i + 1)) for i in range(17)])
        serial = read_fasta(path)
        for n in (1, 3, 4, 9):
            chunks = read_fasta_parallel(path, n)
            assert len(chunks) == n
            merged = [r for c in chunks for r in c]
            assert [r.id for r in merged] == [r.id for r in serial]
            assert [r.sequence for r in merged] == [
                r.sequence for r in serial
            ]

    @settings(max_examples=30, deadline=None)
    @given(
        seqs=st.lists(
            st.text(alphabet="ARNDCQEG", min_size=1, max_size=80),
            min_size=1,
            max_size=20,
        ),
        nchunks=st.integers(1, 12),
    )
    def test_property_chunks_equal_serial(self, seqs, nchunks):
        text = "".join(f">s{i}\n{s}\n" for i, s in enumerate(seqs))
        data = text.encode()
        serial = parse_fasta_text(text)
        chunks = [
            read_fasta_chunk(data, s, e, overlap=8)
            for s, e in chunk_boundaries(len(data), nchunks)
        ]
        merged = [r for c in chunks for r in c]
        assert [(r.id, r.sequence) for r in merged] == [
            (r.id, r.sequence) for r in serial
        ]
