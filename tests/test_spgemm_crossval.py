"""Cross-validation of every SpGEMM formulation against every bundled
semiring.

The numeric fast path (`spgemm_numeric`, and the vectorized branch inside
`spgemm_coo`) must be indistinguishable from the generic hash/heap kernels
on every bundled semiring and sparsity pattern — including empty rows and
columns, 0×N shapes, and duplicate-entry COO inputs.  These tests are the
safety net that let the kernels be rewritten freely; they also assert the
fast path's defining property: no per-element Python ``add``/``multiply``
is ever invoked for a numeric semiring.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.semirings import (
    encode_seed_hits,
    substitute_as_numeric_semiring,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.semiring import (
    ARITHMETIC,
    BOOLEAN,
    COUNTING,
    MAX_MIN,
    MAX_TIMES,
    MIN_PLUS,
    Semiring,
)
from repro.sparse.spgemm import (
    spgemm,
    spgemm_coo,
    spgemm_hash,
    spgemm_heap,
    spgemm_numeric,
    spgemm_scipy,
)

#: Every semiring bundled by repro.sparse.semiring.
ALL_SEMIRINGS = [ARITHMETIC, BOOLEAN, MIN_PLUS, MAX_MIN, MAX_TIMES, COUNTING]

#: add distributes over multiply for these, so duplicate-entry COO inputs
#: must give the same product as their deduplicated form (COUNTING is
#: excluded by design: it counts entries, not values).
DISTRIBUTIVE = [ARITHMETIC, BOOLEAN, MIN_PLUS, MAX_TIMES]


def _random_pair(seed: int):
    """A random compatible CSR pair with varied (possibly degenerate)
    shapes and densities; values are small positive ints in float64."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(0, 16))
    k = int(rng.integers(0, 12))
    n = int(rng.integers(0, 16))
    density = float(rng.uniform(0.0, 0.45))
    a = sp.random(m, k, density=density, random_state=int(seed), format="csr")
    b = sp.random(k, n, density=density, random_state=int(seed) + 1,
                  format="csr")
    a.data[:] = rng.integers(1, 9, len(a.data))
    b.data[:] = rng.integers(1, 9, len(b.data))
    return (
        CSRMatrix.from_coo(COOMatrix.from_scipy(a)),
        CSRMatrix.from_coo(COOMatrix.from_scipy(b)),
    )


def _prepare(mat: CSRMatrix, semiring: Semiring) -> CSRMatrix:
    """Cast values into the semiring's domain (bools for BOOLEAN)."""
    if semiring is BOOLEAN:
        return mat.astype(bool)
    return mat


def _norm(d: dict, semiring: Semiring) -> dict:
    """Normalise a result dict for exact comparison across kernels."""
    if semiring is BOOLEAN:
        return {k: bool(v) for k, v in d.items()}
    return {k: float(v) for k, v in d.items()}


class TestAllKernelsAgree:
    """~50 seeded random cases: every kernel, every bundled semiring."""

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS,
                             ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", range(8))
    def test_hash_heap_numeric_coo_agree(self, semiring, seed):
        a, b = _random_pair(seed)
        a, b = _prepare(a, semiring), _prepare(b, semiring)
        ref = _norm(spgemm_hash(a, b, semiring).to_dict(), semiring)
        heap = _norm(spgemm_heap(a, b, semiring).to_dict(), semiring)
        num = spgemm_numeric(a, b, semiring)
        coo = spgemm_coo(a.to_coo(), b.to_coo(), semiring)
        hyb = spgemm(a, b, semiring)
        assert heap == ref
        assert _norm(num.to_dict(), semiring) == ref
        assert _norm(coo.to_dict(), semiring) == ref
        assert _norm(hyb.to_dict(), semiring) == ref
        # the fast paths must produce typed, not object, value arrays
        assert num.vals.dtype != object
        assert coo.vals.dtype != object

    @pytest.mark.parametrize("seed", range(8))
    def test_scipy_agrees_on_arithmetic(self, seed):
        # values are strictly positive, so scipy's eliminate_zeros is a
        # no-op and exact equality is required
        a, b = _random_pair(seed)
        ref = _norm(spgemm_hash(a, b, ARITHMETIC).to_dict(), ARITHMETIC)
        got = _norm(spgemm_scipy(a, b).to_dict(), ARITHMETIC)
        assert got == ref

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS,
                             ids=lambda s: s.name)
    def test_zero_by_n_shapes(self, semiring):
        dtype = bool if semiring is BOOLEAN else np.int64
        for (m, k, n) in [(0, 5, 7), (5, 0, 7), (5, 7, 0), (0, 0, 0)]:
            a = CSRMatrix.from_coo(COOMatrix.empty(m, k, dtype=dtype))
            b = CSRMatrix.from_coo(COOMatrix.empty(k, n, dtype=dtype))
            for impl in (spgemm_hash, spgemm_heap, spgemm_numeric, spgemm):
                out = impl(a, b, semiring)
                assert out.shape == (m, n)
                assert out.nnz == 0
            out = spgemm_coo(a.to_coo(), b.to_coo(), semiring)
            assert out.shape == (m, n) and out.nnz == 0

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS,
                             ids=lambda s: s.name)
    def test_empty_rows_and_cols(self, semiring):
        # row 1 and column 2 of A empty; row 0 of B empty
        a = COOMatrix(3, 4, [0, 0, 2], [0, 3, 3], [2.0, 3.0, 4.0])
        b = COOMatrix(4, 3, [1, 3, 3], [0, 0, 2], [5.0, 6.0, 7.0])
        if semiring is BOOLEAN:
            a, b = a.astype(bool), b.astype(bool)
        ac, bc = CSRMatrix.from_coo(a), CSRMatrix.from_coo(b)
        ref = _norm(spgemm_hash(ac, bc, semiring).to_dict(), semiring)
        assert _norm(spgemm_heap(ac, bc, semiring).to_dict(),
                     semiring) == ref
        assert _norm(spgemm_numeric(ac, bc, semiring).to_dict(),
                     semiring) == ref
        assert _norm(spgemm_coo(a, b, semiring).to_dict(), semiring) == ref

    @pytest.mark.parametrize("semiring", DISTRIBUTIVE,
                             ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", range(4))
    def test_duplicate_coo_entries(self, semiring, seed):
        """``spgemm_coo`` accepts duplicate coordinates; for distributive
        semirings the product must equal the deduplicated form's."""
        rng = np.random.default_rng(seed)
        nnz = 12
        a = COOMatrix(6, 5, rng.integers(0, 6, nnz),
                      rng.integers(0, 5, nnz),
                      rng.integers(1, 9, nnz).astype(np.float64))
        b = COOMatrix(5, 7, rng.integers(0, 5, nnz),
                      rng.integers(0, 7, nnz),
                      rng.integers(1, 9, nnz).astype(np.float64))
        if semiring is BOOLEAN:
            a, b = a.astype(bool), b.astype(bool)
        a_dedup = a.sum_duplicates(semiring.add)
        b_dedup = b.sum_duplicates(semiring.add)
        ref = _norm(
            spgemm_hash(CSRMatrix.from_coo(a_dedup),
                        CSRMatrix.from_coo(b_dedup), semiring).to_dict(),
            semiring,
        )
        got = _norm(spgemm_coo(a, b, semiring).to_dict(), semiring)
        assert got == ref


class TestPastisNumericSemiring:
    """The encoded AS semiring: generic and numeric kernels share one
    definition and must agree."""

    @pytest.mark.parametrize("seed", range(4))
    def test_as_numeric_matches_hash(self, seed):
        rng = np.random.default_rng(seed)
        a = sp.random(10, 8, density=0.3, random_state=seed, format="csr")
        s = sp.random(8, 8, density=0.3, random_state=seed + 1,
                      format="csr")
        a.data[:] = rng.integers(0, 50, len(a.data))  # positions
        s.data[:] = rng.integers(0, 5, len(s.data))   # distances
        ac = CSRMatrix.from_coo(COOMatrix.from_scipy(a)).astype(np.int64)
        sc = CSRMatrix.from_coo(COOMatrix.from_scipy(s)).astype(np.int64)
        sr = substitute_as_numeric_semiring()
        ref = {k: int(v) for k, v in spgemm_hash(ac, sc, sr)
               .to_dict().items()}
        num = spgemm_numeric(ac, sc, sr)
        assert {k: int(v) for k, v in num.to_dict().items()} == ref
        assert num.vals.dtype == np.int64

    def test_encoding_preserves_min_order(self):
        pos = np.array([7, 3, 7, 0])
        dist = np.array([1, 2, 0, 1])
        enc = encode_seed_hits(pos, dist)
        # lexicographic (distance, position) order == integer order
        order = np.lexsort((pos, dist))
        assert (np.argsort(enc, kind="stable") == order).all()


def _counted(base: Semiring):
    """Wrap a semiring's scalar ops with call counters, keeping the
    numeric spec — the fast path must leave the counters untouched."""
    calls = {"add": 0, "multiply": 0}

    def add(x, y):
        calls["add"] += 1
        return base.add(x, y)

    def mul(x, y):
        calls["multiply"] += 1
        return base.multiply(x, y)

    return Semiring(base.name + "+counted", add, mul, base.zero,
                    numeric=base.numeric), calls


class TestNoPythonDispatchOnNumericPath:
    """Acceptance: SpGEMM over a numeric semiring never calls the
    per-element Python ``add``/``multiply``."""

    @pytest.mark.parametrize("semiring", ALL_SEMIRINGS,
                             ids=lambda s: s.name)
    def test_csr_and_coo_kernels(self, semiring):
        a, b = _random_pair(3)
        a, b = _prepare(a, semiring), _prepare(b, semiring)
        counted, calls = _counted(semiring)
        out = spgemm(a, b, counted)
        out_coo = spgemm_coo(a.to_coo(), b.to_coo(), counted)
        assert out.nnz == out_coo.nnz
        assert calls == {"add": 0, "multiply": 0}, (
            f"{semiring.name}: numeric path executed Python ops {calls}"
        )

    def test_bool_values_under_arithmetic_fall_back(self):
        """Bool arithmetic saturates under NumPy ufuncs (True + True is
        True, not 2), so bool operands must not engage a non-bool numeric
        spec — the dispatcher has to fall back and agree with hash."""
        a, b = _random_pair(5)
        ab, bb = a.astype(bool), b.astype(bool)
        assert not ARITHMETIC.numeric.compatible(ab.data.dtype,
                                                 bb.data.dtype)
        ref = spgemm_hash(ab, bb, ARITHMETIC).to_dict()
        got = spgemm(ab, bb, ARITHMETIC).to_dict()
        assert {k: bool(v) for k, v in got.items()} == (
            {k: bool(v) for k, v in ref.items()}
        )
        # COUNTING never reads values, so bool operands may stay fast
        counted, calls = _counted(COUNTING)
        spgemm(ab, bb, counted)
        assert calls == {"add": 0, "multiply": 0}

    def test_object_values_fall_back_to_python_ops(self):
        # sanity check that the counter wrapper actually observes the
        # generic path: object-valued inputs cannot use the fast path
        a, b = _random_pair(3)
        a = CSRMatrix(a.nrows, a.ncols, a.indptr, a.indices,
                      a.data.astype(object))
        counted, calls = _counted(ARITHMETIC)
        spgemm(a, b, counted)
        assert calls["multiply"] > 0

    def test_summa_numeric_stage_no_python_ops(self):
        """The SUMMA local multiply + accumulate also stays vectorized."""
        from repro.mpisim.comm import run_spmd
        from repro.mpisim.grid import ProcessGrid
        from repro.sparse.distmat import DistSparseMatrix
        from repro.sparse.summa import summa

        rng = np.random.default_rng(0)
        nnz = 40
        rows = rng.integers(0, 12, nnz)
        cols = rng.integers(0, 12, nnz)
        vals = rng.integers(1, 9, nnz).astype(np.float64)
        coo = COOMatrix(12, 12, rows, cols, vals).sum_duplicates(
            ARITHMETIC.add
        )
        counted, calls = _counted(ARITHMETIC)

        def fn(comm):
            grid = ProcessGrid.create(comm)
            mine = slice(comm.rank, None, comm.size)
            mk = lambda: DistSparseMatrix.distribute(  # noqa: E731
                grid, 12, 12, coo.rows[mine], coo.cols[mine],
                coo.vals[mine],
            )
            c = summa(mk(), mk(), counted)
            return c.gather_global()

        run_spmd(4, fn)
        assert calls == {"add": 0, "multiply": 0}
