"""Backend-conformance suite for the :class:`CommBackend` interface.

Every registered SPMD backend must implement the same semantics — p2p
``(source, tag)`` matching in FIFO order, non-blocking handles,
collectives, ``split`` with its call-count validation, watchdog timeouts
and failure propagation.  The suite is parametrized over
:func:`repro.mpisim.backend.available_backends`, so the mpi4py adapter
picks it up for free when mpi4py is installed (it is skipped unless the
interpreter was launched by ``mpirun`` with a matching world size).

Every SPMD body is a module-level function so the ``mp`` backend can run
the suite under the ``spawn`` start method too (fork inherits closures,
spawn pickles the function by reference).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpisim import ProcessGrid, SpmdError, run_spmd
from repro.mpisim.backend import (
    COMM_BACKENDS,
    available_backends,
    get_runner,
)
from repro.mpisim.tracing import CommTracer

BACKENDS = available_backends()


def spmd(backend, nranks, fn, *args, timeout=60.0, tracer=None):
    if backend == "mpi":
        from mpi4py import MPI

        if MPI.COMM_WORLD.Get_size() != nranks:
            pytest.skip(
                f"mpi backend needs 'mpirun -n {nranks}' to run this"
            )
    return run_spmd(
        nranks, fn, *args, timeout=timeout, tracer=tracer,
        comm_backend=backend,
    )


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


# ---------------------------------------------------------------------------
# SPMD bodies (module-level: picklable under the spawn start method)
# ---------------------------------------------------------------------------


def _ring(comm):
    """Ring exchange of a (big ndarray, control) payload — the big array
    rides the shared-memory path under the mp backend."""
    big = np.arange(50_000, dtype=np.int64) * (comm.rank + 1)
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    comm.send((big, "ctl", comm.rank), nxt, tag=3)
    arr, word, src = comm.recv(source=prv, tag=3)
    assert word == "ctl" and src == prv
    assert arr.dtype == np.int64 and arr.shape == (50_000,)
    assert arr[1] == prv + 1
    return int(arr[2])


def _tag_matching(comm):
    """Messages match on (source, tag) in FIFO order per channel, and
    ANY_SOURCE receives do not steal a tag-mismatched message."""
    if comm.rank == 0:
        comm.send("a1", 1, tag=1)
        comm.send("b", 1, tag=2)
        comm.send("a2", 1, tag=1)
        return None
    if comm.rank == 1:
        assert comm.recv(source=0, tag=2) == "b"
        assert comm.recv(tag=1) == "a1"  # ANY_SOURCE, FIFO within tag
        assert comm.recv(source=0, tag=1) == "a2"
    return None


def _isend_irecv(comm):
    reqs = [
        comm.isend((comm.rank, dst), dst, tag=9)
        for dst in range(comm.size)
    ]
    rreqs = [comm.irecv(source=src, tag=9) for src in range(comm.size)]
    vals = comm.waitall(rreqs)
    comm.waitall(reqs)
    assert vals == [(src, comm.rank) for src in range(comm.size)]
    done, _ = comm.irecv(tag=12345).test()
    assert not done  # nothing queued on that tag
    return None


def _tryrecv(comm):
    """tryrecv never blocks and drains queued matches one per call."""
    ok, val = comm.tryrecv(tag=5)
    assert not ok and val is None
    comm.barrier()
    if comm.rank == 0:
        for i in range(3):
            comm.send(i, 1, tag=5)
    comm.barrier()
    if comm.rank == 1:
        got = []
        while True:
            ok, val = comm.tryrecv(source=0, tag=5)
            if not ok:
                break
            got.append(val)
        assert got == [0, 1, 2]
    return None


def _collectives(comm):
    root = 1 % comm.size
    assert comm.bcast(
        comm.rank if comm.rank == root else None, root=root
    ) == root
    assert comm.allgather(comm.rank) == list(range(comm.size))
    g = comm.gather(comm.rank * 2, root=0)
    assert (g == [2 * r for r in range(comm.size)]) if comm.rank == 0 \
        else g is None
    objs = [f"s{r}" for r in range(comm.size)] if comm.rank == 0 else None
    assert comm.scatter(objs, root=0) == f"s{comm.rank}"
    a2a = comm.alltoall([(comm.rank, dst) for dst in range(comm.size)])
    assert a2a == [(src, comm.rank) for src in range(comm.size)]
    red = comm.reduce(comm.rank, lambda a, b: a + b, root=0)
    total = sum(range(comm.size))
    assert (red == total) if comm.rank == 0 else red is None
    assert comm.allreduce(comm.rank, lambda a, b: a + b) == total
    assert comm.exscan(1) == comm.rank
    comm.barrier()
    return None


def _split_grid(comm):
    """ProcessGrid (two splits per rank) works on the bare interface, and
    sub-communicator traffic does not cross between groups."""
    grid = ProcessGrid.create(comm)
    assert grid.row_comm.size == grid.q and grid.col_comm.size == grid.q
    rows = grid.row_comm.allgather(comm.rank)
    assert rows == [grid.row * grid.q + c for c in range(grid.q)]
    # p2p inside the row sub-communicator
    nxt = (grid.col + 1) % grid.q
    prv = (grid.col - 1) % grid.q
    grid.row_comm.send(("row", comm.rank), nxt, tag=4)
    word, world_src = grid.row_comm.recv(source=prv, tag=4)
    assert word == "row" and world_src == grid.rank_of(grid.row, prv)
    cols = grid.col_comm.allgather(comm.rank)
    assert cols == [r * grid.q + grid.col for r in range(grid.q)]
    return None


def _split_reversed_key(comm):
    """key reverses rank order within the group."""
    sub = comm.split(color=0, key=-comm.rank)
    assert sub.rank == comm.size - 1 - comm.rank
    assert sub.allgather(comm.rank) == list(range(comm.size))[::-1]
    return None


def _split_mismatch(comm):
    """Unequal split call counts must raise, not silently cross-pair."""
    comm.split(color=0)
    if comm.rank == 0:
        comm.split(color=0)
    else:
        comm.barrier()
    return None


def _one_rank_raises(comm):
    comm.barrier()
    if comm.rank == comm.size - 1:
        raise ValueError("kapow")
    comm.barrier()
    return comm.rank


def _recv_never_satisfied(comm):
    if comm.rank == 0:
        comm.recv(source=1, tag=404)
    return None


def _none_result(comm):
    comm.barrier()
    return None


def _nested_ndarray_payload(comm):
    """Arrays above and below the shared-memory threshold, nested in
    containers and non-contiguous, round-trip exactly."""
    if comm.rank == 0:
        big = np.arange(40_000, dtype=np.float64).reshape(200, 200)
        payload = {
            "big": big,
            "view": big[::2, ::3],  # non-contiguous
            "small": np.array([1, 2, 3], dtype=np.int8),
            "empty": np.empty((0, 4), dtype=np.float32),
            "meta": ("k", 42),
        }
        comm.send(payload, 1, tag=8)
    elif comm.rank == 1:
        got = comm.recv(source=0, tag=8)
        big = np.arange(40_000, dtype=np.float64).reshape(200, 200)
        np.testing.assert_array_equal(got["big"], big)
        np.testing.assert_array_equal(got["view"], big[::2, ::3])
        assert got["small"].tolist() == [1, 2, 3]
        assert got["empty"].shape == (0, 4)
        assert got["meta"] == ("k", 42)
    comm.barrier()
    return None


def _traced(comm):
    comm.send(np.zeros(100, dtype=np.uint8), (comm.rank + 1) % comm.size,
              tag=2, kind="rebal")
    comm.recv(tag=2)
    comm.allgather(comm.rank)
    return None


# ---------------------------------------------------------------------------
# the conformance matrix
# ---------------------------------------------------------------------------


class TestConformance:
    def test_ring_exchange(self, backend):
        out = spmd(backend, 4, _ring)
        assert out == [2 * ((r - 1) % 4 + 1) for r in range(4)]

    def test_tag_and_source_matching(self, backend):
        spmd(backend, 2, _tag_matching)

    def test_isend_irecv_waitall(self, backend):
        spmd(backend, 3, _isend_irecv)

    def test_tryrecv_drains_without_blocking(self, backend):
        spmd(backend, 2, _tryrecv)

    def test_collectives(self, backend):
        spmd(backend, 4, _collectives)

    def test_single_rank_world(self, backend):
        assert spmd(backend, 1, _collectives) == [None]

    def test_process_grid_splits(self, backend):
        spmd(backend, 4, _split_grid)

    def test_split_key_order(self, backend):
        spmd(backend, 3, _split_reversed_key)

    def test_split_call_count_mismatch_raises(self, backend):
        """Satellite regression: ranks disagreeing on the number of
        split() calls must fail loudly on every backend."""
        if backend == "mpi":
            pytest.skip("MPI_Comm_split cannot detect this portably")
        with pytest.raises(SpmdError, match="split"):
            spmd(backend, 2, _split_mismatch, timeout=10.0)

    def test_failure_propagates_with_cause(self, backend):
        with pytest.raises(SpmdError, match="kapow") as exc_info:
            spmd(backend, 4, _one_rank_raises)
        assert exc_info.value.__cause__ is not None

    def test_deadlock_times_out(self, backend):
        if backend == "mpi":
            pytest.skip("deadlock detection is the MPI runtime's job")
        with pytest.raises(SpmdError):
            spmd(backend, 2, _recv_never_satisfied, timeout=0.5)

    def test_none_results_are_not_missing(self, backend):
        assert spmd(backend, 4, _none_result) == [None] * 4

    def test_ndarray_payload_roundtrip(self, backend):
        spmd(backend, 2, _nested_ndarray_payload)

    def test_tracer_collects_from_every_rank(self, backend):
        tracer = CommTracer()
        spmd(backend, 4, _traced, tracer=tracer)
        kinds = tracer.messages_by_kind()
        assert kinds.get("rebal") == 4
        assert kinds.get("allgather") == 4 * 3


class TestSmokeTraceParity:
    """Satellite regression: the sim and mp transports must trace the
    smoke pipeline *identically* — same (comm, op, kind) groups, same
    message counts, same byte totals — or the static predictor's
    ``--check`` gate means different things on different backends."""

    def test_sim_and_mp_summaries_identical(self):
        from repro.core.smoke import run_smoke

        summaries = {}
        for backend in ("sim", "mp"):
            tracer = CommTracer()
            run_smoke(4, tracer=tracer, comm_backend=backend)
            summaries[backend] = tracer.summary()
        assert summaries["sim"] == summaries["mp"]
        assert summaries["sim"]["total_messages"] > 0


class TestRegistry:
    def test_backend_knob_choices_cover_registry(self):
        assert set(available_backends()) <= set(COMM_BACKENDS)
        assert "sim" in available_backends()
        assert "mp" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown comm backend"):
            get_runner("carrier-pigeon")
        with pytest.raises(ValueError, match="unknown comm backend"):
            run_spmd(2, _none_result, comm_backend="carrier-pigeon")

    def test_runners_resolve_lazily(self):
        for name in COMM_BACKENDS:
            assert callable(get_runner(name))
