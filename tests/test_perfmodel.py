"""Shape tests for the performance model: the qualitative claims of the
paper's Figs. 12-16 and Tables must hold in the regenerated series."""

import math

import numpy as np
import pytest

from repro.core.config import PastisConfig
from repro.perfmodel import (
    COMPARISON_NODES,
    CORI_HASWELL,
    CORI_KNL,
    PAPER_DATASETS,
    SCALING_NODES,
    AlignmentCostModel,
    CommCostModel,
    alignment_time,
    calibrate_alignment_model,
    calibrate_comm_model,
    calibrate_local_machine,
    fig12_variants,
    fig13_tools,
    fig14_strong_scaling,
    fig14_weak_scaling,
    fig15_dissection,
    fig16_component_scaling,
    metaclust,
    mmseqs_total,
    parallel_efficiency,
    pastis_components,
    pastis_total,
    table1_alignment_pct,
)


class TestWorkloads:
    def test_paper_anchor_a_nnz(self):
        # Section IV-D: Metaclust50-1M has 108M nonzeros in A
        assert PAPER_DATASETS["1M"].a_nnz == pytest.approx(108e6)

    def test_paper_anchor_s_nnz(self):
        # and 611M nonzeros in S with 25 substitutes
        assert PAPER_DATASETS["1M"].s_nnz(25) == pytest.approx(611e6, rel=0.01)

    def test_paper_anchor_alignments(self):
        ds = PAPER_DATASETS["0.5M"]
        assert ds.alignments(0) == pytest.approx(399e6)
        # the 8.7x factor at s=25
        assert ds.alignments(25) / ds.alignments(0) == pytest.approx(
            8.77, rel=0.02
        )

    def test_paper_anchor_b_nnz_weak_scaling(self):
        # 10.9 / 43.3 / 172.3 billion at 1.25 / 2.5 / 5M, s=25
        assert PAPER_DATASETS["1.25M"].b_nnz(25) == pytest.approx(10.9e9)
        assert PAPER_DATASETS["2.5M"].b_nnz(25) == pytest.approx(
            43.6e9, rel=0.02
        )
        assert PAPER_DATASETS["5M"].b_nnz(25) == pytest.approx(
            174.4e9, rel=0.02
        )

    def test_quadratic_growth(self):
        # "nonzeros in the output matrix increases roughly by a factor of
        # four when we double the number of sequences"
        r = PAPER_DATASETS["2.5M"].b_nnz(25) / PAPER_DATASETS["1.25M"].b_nnz(25)
        assert r == pytest.approx(4.0, rel=0.01)

    def test_ck_reduces_alignments_enough(self):
        ds = PAPER_DATASETS["0.5M"]
        # paper: ">90% reduction" in many cases (substitute variant)
        assert ds.alignments(25, ck=True) / ds.alignments(25) < 0.10


class TestFig12:
    @pytest.fixture(scope="class")
    def series(self):
        return fig12_variants("0.5M")

    def test_xd_faster_than_sw(self, series):
        for s in (0, 25):
            for ck in ("", "-CK"):
                sw = series[f"PASTIS-SW-s{s}{ck}"]
                xd = series[f"PASTIS-XD-s{s}{ck}"]
                assert all(x < w for x, w in zip(xd, sw))

    def test_ck_faster(self, series):
        for name in ("SW-s0", "SW-s25", "XD-s0", "XD-s25"):
            base = series[f"PASTIS-{name}"]
            ck = series[f"PASTIS-{name}-CK"]
            assert all(c < b for c, b in zip(ck, base))

    def test_substitutes_slower(self, series):
        assert all(
            a > b for a, b in zip(series["PASTIS-XD-s25"],
                                  series["PASTIS-XD-s0"])
        )

    def test_runtimes_decrease_with_nodes(self, series):
        for vals in series.values():
            assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_magnitude_matches_paper_axis(self, series):
        # paper Fig. 12 axis spans ~8 to ~8081 seconds
        assert 2000 < series["PASTIS-SW-s0"][0] < 20000
        assert series["PASTIS-XD-s0-CK"][-1] < 100


class TestFig13:
    @pytest.fixture(scope="class")
    def series(self):
        return fig13_tools("0.5M")

    def test_mmseqs_wins_single_node(self, series):
        assert series["MMseqs2-default"][0] < series["PASTIS-XD-s0-CK"][0]

    def test_pastis_overtakes(self, series):
        # paper: "PASTIS-XD-s0-CK runs faster than MMseqs2 ... starting
        # around 16 nodes"; the crossover must exist and be <= 64 nodes
        pastis = series["PASTIS-XD-s0-CK"]
        mm = series["MMseqs2-default"]
        cross = [n for n, a, b in zip(COMPARISON_NODES, pastis, mm) if a < b]
        assert cross and min(cross) <= 64

    def test_mmseqs_plateaus(self, series):
        mm = series["MMseqs2-default"]
        # scaling stalls: 64 -> 256 nodes improves by < 25 %
        assert mm[-1] > 0.75 * mm[-2]

    def test_mmseqs_sensitivity_ordering(self, series):
        assert (
            series["MMseqs2-low"][0]
            < series["MMseqs2-default"][0]
            < series["MMseqs2-high"][0]
        )

    def test_mmseqs_high_scales_better(self, series):
        # "MMseqs2-high scales somewhat better as it is more compute-bound"
        hi = series["MMseqs2-high"]
        lo = series["MMseqs2-low"]
        assert hi[0] / hi[-1] > lo[0] / lo[-1]

    def test_last_single_node_beats_mmseqs_variants(self, series):
        # paper: "LAST's single-node performance is better than three
        # variants of MMseqs2"
        assert series["LAST"][0] < series["MMseqs2-low"][0]
        assert math.isnan(series["LAST"][1])


class TestTable1:
    @pytest.fixture(scope="class")
    def pct(self):
        return table1_alignment_pct("0.5M")

    def test_sw_higher_than_xd(self, pct):
        for s in (0, 25):
            sw = pct[f"PASTIS-SW-s{s}"]
            xd = pct[f"PASTIS-XD-s{s}"]
            assert all(a > b for a, b in zip(sw, xd))

    def test_ck_lowers_percentage(self, pct):
        assert all(
            a < b for a, b in zip(pct["PASTIS-XD-s0-CK"], pct["PASTIS-XD-s0"])
        )

    def test_percentages_valid(self, pct):
        for vals in pct.values():
            assert all(0 <= v <= 100 for v in vals)

    def test_grows_with_dataset_size(self):
        # "the percentage of time spent in alignment tends to increase
        # with increased number of sequences" (quadratic alignments vs
        # partially linear matrix work)
        p05 = table1_alignment_pct("0.5M")["PASTIS-SW-s0"]
        p1 = table1_alignment_pct("1M")["PASTIS-SW-s0"]
        assert p1[2] >= p05[2]


class TestFig14:
    def test_strong_scaling_monotone(self):
        series = fig14_strong_scaling()
        for s, vals in series.items():
            assert all(a > b for a, b in zip(vals, vals[1:])), s

    def test_strong_scaling_ordered_by_substitutes(self):
        series = fig14_strong_scaling()
        for p_idx in range(len(SCALING_NODES)):
            col = [series[s][p_idx] for s in (0, 10, 25, 50)]
            assert col == sorted(col)

    def test_exact_scales_better_than_substitutes(self):
        # paper: "using exact k-mers exhibits better scalability than using
        # substitute k-mers up to 2K nodes"
        series = fig14_strong_scaling()
        eff0 = series[0][0] / series[0][-1]
        eff25 = series[25][0] / series[25][-1]
        assert eff0 > eff25 * 0.8  # comparable or better

    def test_weak_scaling_negative_slope(self):
        # paper: "the lines in the weak scaling plots have a negative
        # slope" at 4x node steps
        series = fig14_weak_scaling()
        for s, vals in series.items():
            assert all(a >= b for a, b in zip(vals, vals[1:])), s

    def test_parallel_efficiency_bounds(self):
        series = fig14_strong_scaling()
        eff = parallel_efficiency(series[0], SCALING_NODES)
        assert eff[0] == pytest.approx(1.0)
        assert all(0 < e <= 1.2 for e in eff)


class TestFig15:
    @pytest.fixture(scope="class")
    def diss(self):
        return fig15_dissection(substitutes=(0, 25))

    def test_fractions_sum_to_100(self, diss):
        for s, by_nodes in diss.items():
            for p, comps in by_nodes.items():
                assert sum(comps.values()) == pytest.approx(100.0)

    def test_wait_considerable_at_small_nodes(self, diss):
        # s=0 at 64 nodes: wait is a sizeable share
        assert diss[0][64]["wait"] > 15

    def test_wait_shrinks_with_nodes(self, diss):
        assert diss[0][2025]["wait"] < diss[0][64]["wait"]

    def test_wait_less_pronounced_with_substitutes(self, diss):
        # "this component is less pronounced when substitute k-mers are
        # used as other components take more time"
        assert diss[25][64]["wait"] < diss[0][64]["wait"]

    def test_spgemm_dominates_exact(self, diss):
        for p, comps in diss[0].items():
            assert comps["(AS)AT"] == max(comps.values())

    def test_form_s_visible_with_substitutes(self, diss):
        assert diss[25][64]["form S"] > 10

    def test_spgemm_share_grows_with_nodes(self, diss):
        # "with increasing number of nodes, the percentage of time spent in
        # SpGEMM increases as opposed to that of matrix formation"
        assert diss[0][2025]["(AS)AT"] > diss[0][64]["(AS)AT"]


class TestFig16:
    def test_all_components_decrease(self):
        series = fig16_component_scaling(substitutes=0)
        for name, vals in series.items():
            assert all(a >= b for a, b in zip(vals, vals[1:])), name

    def test_spgemm_least_scalable_major_component(self):
        # the paper: "the bottleneck for scalability seems to be the
        # SpGEMM operations"
        series = fig16_component_scaling(substitutes=0)
        spgemm_ratio = series["(AS)AT"][0] / series["(AS)AT"][-1]
        for name in ("fasta", "form A", "wait"):
            ratio = series[name][0] / max(series[name][-1], 1e-12)
            assert spgemm_ratio <= ratio + 1e-9, name

    def test_substitutes_components_present(self):
        series = fig16_component_scaling(substitutes=25)
        for name in ("form S", "AS", "sym."):
            assert name in series


class TestModelInternals:
    def test_alignment_time_scales_linearly(self):
        ds = PAPER_DATASETS["0.5M"]
        cfg = PastisConfig(align_mode="sw")
        t1 = alignment_time(ds, CORI_HASWELL, cfg, 1)
        t4 = alignment_time(ds, CORI_HASWELL, cfg, 4)
        assert t1 / t4 == pytest.approx(4.0)

    def test_components_positive(self):
        ct = pastis_components(
            PAPER_DATASETS["2.5M"], CORI_KNL, PastisConfig(substitutes=25),
            64,
        )
        assert all(v >= 0 for v in ct.components.values())
        assert ct.total > 0

    def test_single_node_no_wait(self):
        ct = pastis_components(
            PAPER_DATASETS["0.5M"], CORI_HASWELL, PastisConfig(), 1
        )
        assert ct.components["wait"] == 0.0

    def test_mmseqs_serial_floor(self):
        ds = PAPER_DATASETS["0.5M"]
        t_huge = mmseqs_total(ds, CORI_HASWELL, 5.7, 10**6)
        assert t_huge > 10  # the serial term never parallelises

    def test_metaclust_constructor(self):
        ds = metaclust(2.5)
        assert ds.n_sequences == 2.5e6
        assert ds.name == "Metaclust50-2.5M"

    def test_calibration_returns_positive_rates(self):
        spec = calibrate_local_machine()
        assert spec.sw_cells_per_sec > 0
        assert spec.spgemm_entries_per_sec > 0
        assert spec.substitutes_per_sec > 0
        assert spec.parse_bytes_per_sec > 0


class TestAlignmentCostModel:
    """The calibrated cost model of the dynamic alignment work stealer:
    fitted from real :mod:`repro.align.engine` runs, persisted as a plain
    dict in ``graph.meta``."""

    @pytest.fixture(scope="class")
    def model(self):
        return calibrate_alignment_model(k=6)

    def test_fitted_rates_positive_and_finite(self, model):
        for mode in ("xd", "sw"):
            rate = model.cells_per_sec(mode)
            assert math.isfinite(rate) and rate > 0
            assert model.task_overhead(mode) >= 0

    def test_seconds_grow_with_cells_and_tasks(self, model):
        assert model.seconds(2e6, 1, "xd") > model.seconds(1e6, 1, "xd")
        assert model.seconds(1e6, 100, "xd") >= model.seconds(1e6, 1, "xd")

    def test_meta_dict_roundtrip(self, model):
        assert AlignmentCostModel.from_dict(model.as_dict()) == model

    def test_memoised(self, model):
        assert calibrate_alignment_model(k=6) is model


class TestCommCostModel:
    """The calibrated α–β comm model: fitted from ping-pong/allgather
    microbenchmarks, persisted in ``graph.meta["commcost"]`` and (via
    ``calibrate_local_machine``) in :class:`MachineSpec`."""

    @pytest.fixture(scope="class")
    def model(self):
        return calibrate_comm_model(backend="sim")

    def test_coefficients_positive_and_finite(self, model):
        assert model.backend == "sim"
        assert math.isfinite(model.alpha) and model.alpha >= 0
        assert math.isfinite(model.beta) and model.beta > 0

    def test_seconds_linear_in_volume(self, model):
        base = model.seconds(100, 1e6)
        assert base > 0
        assert model.seconds(200, 2e6) == pytest.approx(2 * base)

    def test_meta_dict_roundtrip(self, model):
        assert CommCostModel.from_dict(model.as_dict()) == model

    def test_memoised(self, model):
        assert calibrate_comm_model(backend="sim") is model

    def test_local_machine_spec_carries_comm_fit(self, model):
        spec = calibrate_local_machine()
        assert spec.comm_alpha == model.alpha
        assert spec.beta == model.beta
