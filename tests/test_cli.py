"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.bio.fasta import write_fasta
from repro.bio.generate import scope_like
from repro.cli import build_parser, main, write_edges_tsv
from repro.core.graph import SimilarityGraph


@pytest.fixture
def fasta_file(tmp_path):
    data = scope_like(
        n_families=3, members_per_family=(3, 3), length_range=(40, 60),
        divergence=0.15, seed=5,
    )
    path = tmp_path / "in.fasta"
    write_fasta(
        path,
        [(data.store.ids[i], data.store.sequence(i))
         for i in range(len(data.store))],
    )
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["in.fa", "-o", "out.tsv"])
        assert args.k == 6
        assert args.substitutes == 0
        assert args.align == "xd"
        assert args.weight == "ani"
        assert args.ranks == 1

    def test_all_options(self):
        args = build_parser().parse_args(
            ["in.fa", "-o", "o.tsv", "--k", "4", "-s", "10",
             "--align", "sw", "--weight", "ns", "--ck", "2",
             "--ranks", "4", "--cluster", "c.tsv",
             "--align-engine", "python"]
        )
        assert args.k == 4
        assert args.substitutes == 10
        assert args.align == "sw"
        assert args.ck == 2
        assert args.cluster == "c.tsv"
        assert args.align_engine == "python"

    def test_align_engine_default_batched(self):
        args = build_parser().parse_args(["in.fa", "-o", "out.tsv"])
        assert args.align_engine == "batched"


class TestMain:
    def test_basic_run(self, fasta_file, tmp_path):
        out = tmp_path / "edges.tsv"
        rc = main([str(fasta_file), "-o", str(out), "--k", "4", "--quiet"])
        assert rc == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("#id_a")
        assert len(lines) > 1
        for line in lines[1:]:
            a, b, w = line.split("\t")
            assert 0.0 < float(w) <= 1.0

    def test_distributed_matches_single(self, fasta_file, tmp_path):
        out1 = tmp_path / "e1.tsv"
        out4 = tmp_path / "e4.tsv"
        main([str(fasta_file), "-o", str(out1), "--k", "4", "--quiet"])
        main([str(fasta_file), "-o", str(out4), "--k", "4",
              "--ranks", "4", "--quiet"])
        assert sorted(out1.read_text().splitlines()) == sorted(
            out4.read_text().splitlines()
        )

    def test_align_engine_oblivious(self, fasta_file, tmp_path):
        out_b = tmp_path / "eb.tsv"
        out_p = tmp_path / "ep.tsv"
        main([str(fasta_file), "-o", str(out_b), "--k", "4", "--quiet",
              "--align-engine", "batched"])
        main([str(fasta_file), "-o", str(out_p), "--k", "4", "--quiet",
              "--align-engine", "python"])
        assert out_b.read_text() == out_p.read_text()

    def test_clustering_output(self, fasta_file, tmp_path):
        out = tmp_path / "edges.tsv"
        clu = tmp_path / "clusters.tsv"
        rc = main([str(fasta_file), "-o", str(out), "--k", "4",
                   "--cluster", str(clu), "--quiet"])
        assert rc == 0
        lines = clu.read_text().strip().splitlines()
        assert len(lines) == 10  # header + 9 sequences
        clusters = {line.split("\t")[1] for line in lines[1:]}
        assert len(clusters) == 3  # three families recovered

    def test_empty_input_fails(self, tmp_path):
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        rc = main([str(empty), "-o", str(tmp_path / "o.tsv"), "--quiet"])
        assert rc == 2

    def test_ns_weights_can_exceed_one(self, fasta_file, tmp_path):
        out = tmp_path / "edges.tsv"
        main([str(fasta_file), "-o", str(out), "--k", "4",
              "--weight", "ns", "--quiet"])
        ws = [float(l.split("\t")[2])
              for l in out.read_text().strip().splitlines()[1:]]
        assert any(w > 1.0 for w in ws)  # raw score / length for identicalish


class TestWriteEdges:
    def test_roundtrip_values(self, tmp_path):
        g = SimilarityGraph.from_edges(
            3, [(0, 1, 0.5), (1, 2, 0.75)], ids=["a", "b", "c"]
        )
        path = tmp_path / "e.tsv"
        n = write_edges_tsv(str(path), g)
        assert n == 2
        rows = path.read_text().strip().splitlines()[1:]
        parsed = {tuple(r.split("\t")[:2]): float(r.split("\t")[2])
                  for r in rows}
        assert parsed == {("a", "b"): 0.5, ("b", "c"): 0.75}

    def test_without_ids(self, tmp_path):
        g = SimilarityGraph.from_edges(2, [(0, 1, 1.0)])
        g.ids = None
        path = tmp_path / "e.tsv"
        write_edges_tsv(str(path), g)
        assert "0\t1\t" in path.read_text()
