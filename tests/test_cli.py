"""Tests for the command-line interface, including the full knob surface:
``--help`` must list every choice-valued config knob with all its choices,
and every choice must round-trip into a validated
:class:`~repro.core.config.PastisConfig`."""

import numpy as np
import pytest

from repro.bio.fasta import write_fasta
from repro.bio.generate import scope_like
from repro.cli import build_parser, config_from_args, main, write_edges_tsv
from repro.core.config import (
    ALIGN_BALANCE_MODES,
    ALIGN_ENGINES,
    ALIGN_MODES,
    COMM_BACKENDS,
    KERNELS,
    WEIGHTS,
    ConfigError,
    PastisConfig,
)
from repro.core.graph import SimilarityGraph
from repro.sparse.kernels import DELEGATED_KERNELS, kernel_available


def _kernel_choice_unavailable(field: str, choice: str) -> bool:
    """Whether this knob choice is a delegated SpGEMM kernel whose backing
    package is not installed (config rejects it with ConfigError)."""
    return (
        field == "kernel"
        and choice in DELEGATED_KERNELS
        and not kernel_available(choice)
    )


@pytest.fixture
def fasta_file(tmp_path):
    data = scope_like(
        n_families=3, members_per_family=(3, 3), length_range=(40, 60),
        divergence=0.15, seed=5,
    )
    path = tmp_path / "in.fasta"
    write_fasta(
        path,
        [(data.store.ids[i], data.store.sequence(i))
         for i in range(len(data.store))],
    )
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["in.fa", "-o", "out.tsv"])
        assert args.k == 6
        assert args.substitutes == 0
        assert args.align == "xd"
        assert args.weight == "ani"
        assert args.ranks == 1

    def test_all_options(self):
        args = build_parser().parse_args(
            ["in.fa", "-o", "o.tsv", "--k", "4", "-s", "10",
             "--align", "sw", "--weight", "ns", "--ck", "2",
             "--ranks", "4", "--cluster", "c.tsv",
             "--align-engine", "python"]
        )
        assert args.k == 4
        assert args.substitutes == 10
        assert args.align == "sw"
        assert args.ck == 2
        assert args.cluster == "c.tsv"
        assert args.align_engine == "python"

    def test_align_engine_default_batched(self):
        args = build_parser().parse_args(["in.fa", "-o", "out.tsv"])
        assert args.align_engine == "batched"


#: flag -> (PastisConfig field, canonical choice tuple) for every
#: choice-valued knob family
CHOICE_KNOBS = {
    "--align": ("align_mode", ALIGN_MODES),
    "--weight": ("weight", WEIGHTS),
    "--kernel": ("kernel", KERNELS),
    "--align-engine": ("align_engine", ALIGN_ENGINES),
    "--align-balance": ("align_balance", ALIGN_BALANCE_MODES),
    "--comm-backend": ("comm_backend", COMM_BACKENDS),
}


class TestCliSurface:
    """The CLI is the documented entry point: its help must describe the
    whole config surface and every choice must reach the config object."""

    def test_help_lists_every_knob_with_choices(self):
        help_text = build_parser().format_help()
        flags = (
            "--k", "--substitutes", "--ck", "--xdrop", "--min-identity",
            "--min-coverage", "--ranks", "--threads", "--steal-factor",
            "--steal-chunks", "--cluster", "--inflation", "--output",
        ) + tuple(CHOICE_KNOBS)
        for flag in flags:
            assert flag in help_text, f"{flag} missing from --help"
        for flag, (_, choices) in CHOICE_KNOBS.items():
            for choice in choices:
                assert choice in help_text, (
                    f"choice {choice!r} of {flag} missing from --help"
                )

    @pytest.mark.parametrize("flag", sorted(CHOICE_KNOBS))
    def test_every_choice_roundtrips_into_config(self, flag):
        field, choices = CHOICE_KNOBS[flag]
        for choice in choices:
            args = build_parser().parse_args(
                ["in.fa", "-o", "o.tsv", flag, choice]
            )
            if _kernel_choice_unavailable(field, choice):
                # the parser accepts the choice; the config then names the
                # missing package instead of failing deep in the pipeline
                with pytest.raises(ConfigError, match=choice):
                    config_from_args(args)
                continue
            config = config_from_args(args)
            assert getattr(config, field) == choice

    def test_parser_choices_match_config_validation(self):
        """The parser's choices= and the config's __post_init__ accept
        exactly the same values (neither can drift)."""
        parser = build_parser()
        by_dest = {a.dest: a for a in parser._actions}
        for flag, (field, choices) in CHOICE_KNOBS.items():
            dest = flag.lstrip("-").replace("-", "_")
            assert tuple(by_dest[dest].choices) == choices
            for choice in choices:  # config accepts every parser choice
                if _kernel_choice_unavailable(field, choice):
                    with pytest.raises(ConfigError, match=choice):
                        PastisConfig(**{field: choice})
                    continue
                PastisConfig(**{field: choice})

    def test_numeric_knobs_roundtrip(self):
        args = build_parser().parse_args(
            ["in.fa", "-o", "o.tsv", "--k", "5", "--substitutes", "7",
             "--ck", "3", "--xdrop", "25", "--min-identity", "0.4",
             "--min-coverage", "0.8", "--threads", "2",
             "--steal-factor", "2.5", "--steal-chunks", "4"]
        )
        config = config_from_args(args)
        assert config.k == 5
        assert config.substitutes == 7
        assert config.common_kmer_threshold == 3
        assert config.xdrop == 25
        assert config.min_identity == 0.4
        assert config.min_coverage == 0.8
        assert config.align_threads == 2
        assert config.steal_factor == 2.5
        assert config.steal_chunks == 4

    def test_invalid_choice_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["in.fa", "-o", "o.tsv", "--align-balance", "magic"]
            )


class TestMain:
    def test_basic_run(self, fasta_file, tmp_path):
        out = tmp_path / "edges.tsv"
        rc = main([str(fasta_file), "-o", str(out), "--k", "4", "--quiet"])
        assert rc == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("#id_a")
        assert len(lines) > 1
        for line in lines[1:]:
            a, b, w = line.split("\t")
            assert 0.0 < float(w) <= 1.0

    def test_distributed_matches_single(self, fasta_file, tmp_path):
        out1 = tmp_path / "e1.tsv"
        out4 = tmp_path / "e4.tsv"
        main([str(fasta_file), "-o", str(out1), "--k", "4", "--quiet"])
        main([str(fasta_file), "-o", str(out4), "--k", "4",
              "--ranks", "4", "--quiet"])
        assert sorted(out1.read_text().splitlines()) == sorted(
            out4.read_text().splitlines()
        )

    def test_align_balance_steal_oblivious(self, fasta_file, tmp_path):
        out_off = tmp_path / "eo.tsv"
        out_steal = tmp_path / "es.tsv"
        main([str(fasta_file), "-o", str(out_off), "--k", "4", "--quiet",
              "--ranks", "4"])
        main([str(fasta_file), "-o", str(out_steal), "--k", "4", "--quiet",
              "--ranks", "4", "--align-balance", "steal"])
        assert sorted(out_off.read_text().splitlines()) == sorted(
            out_steal.read_text().splitlines()
        )

    def test_align_engine_oblivious(self, fasta_file, tmp_path):
        out_b = tmp_path / "eb.tsv"
        out_p = tmp_path / "ep.tsv"
        main([str(fasta_file), "-o", str(out_b), "--k", "4", "--quiet",
              "--align-engine", "batched"])
        main([str(fasta_file), "-o", str(out_p), "--k", "4", "--quiet",
              "--align-engine", "python"])
        assert out_b.read_text() == out_p.read_text()

    def test_comm_backend_mp_oblivious(self, fasta_file, tmp_path):
        out_sim = tmp_path / "esim.tsv"
        out_mp = tmp_path / "emp.tsv"
        main([str(fasta_file), "-o", str(out_sim), "--k", "4", "--quiet",
              "--ranks", "4", "--comm-backend", "sim"])
        main([str(fasta_file), "-o", str(out_mp), "--k", "4", "--quiet",
              "--ranks", "4", "--comm-backend", "mp"])
        assert out_sim.read_text() == out_mp.read_text()

    def test_comm_backend_env_default(self, monkeypatch):
        """REPRO_COMM_BACKEND steers the config default (the CI matrix
        hook), and an explicit flag still wins over it."""
        monkeypatch.setenv("REPRO_COMM_BACKEND", "mp")
        args = build_parser().parse_args(["in.fa", "-o", "o.tsv"])
        assert config_from_args(args).comm_backend == "mp"
        args = build_parser().parse_args(
            ["in.fa", "-o", "o.tsv", "--comm-backend", "sim"]
        )
        assert config_from_args(args).comm_backend == "sim"
        monkeypatch.setenv("REPRO_COMM_BACKEND", "bogus")
        with pytest.raises(ValueError, match="comm_backend"):
            config_from_args(build_parser().parse_args(
                ["in.fa", "-o", "o.tsv"]
            ))

    def test_kernel_env_default(self, monkeypatch):
        """REPRO_KERNEL steers the config default (the CI matrix hook for
        the delegated-kernel job), and an explicit flag still wins."""
        monkeypatch.setenv("REPRO_KERNEL", "struct")
        args = build_parser().parse_args(["in.fa", "-o", "o.tsv"])
        assert config_from_args(args).kernel == "struct"
        args = build_parser().parse_args(
            ["in.fa", "-o", "o.tsv", "--kernel", "join"]
        )
        assert config_from_args(args).kernel == "join"
        if kernel_available("scipy"):
            monkeypatch.setenv("REPRO_KERNEL", "scipy")
            args = build_parser().parse_args(["in.fa", "-o", "o.tsv"])
            assert config_from_args(args).kernel == "scipy"
        monkeypatch.setenv("REPRO_KERNEL", "bogus")
        with pytest.raises(ConfigError, match="kernel"):
            config_from_args(build_parser().parse_args(
                ["in.fa", "-o", "o.tsv"]
            ))

    def test_clustering_output(self, fasta_file, tmp_path):
        out = tmp_path / "edges.tsv"
        clu = tmp_path / "clusters.tsv"
        rc = main([str(fasta_file), "-o", str(out), "--k", "4",
                   "--cluster", str(clu), "--quiet"])
        assert rc == 0
        lines = clu.read_text().strip().splitlines()
        assert len(lines) == 10  # header + 9 sequences
        clusters = {line.split("\t")[1] for line in lines[1:]}
        assert len(clusters) == 3  # three families recovered

    def test_empty_input_fails(self, tmp_path):
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        rc = main([str(empty), "-o", str(tmp_path / "o.tsv"), "--quiet"])
        assert rc == 2

    def test_ns_weights_can_exceed_one(self, fasta_file, tmp_path):
        out = tmp_path / "edges.tsv"
        main([str(fasta_file), "-o", str(out), "--k", "4",
              "--weight", "ns", "--quiet"])
        ws = [float(l.split("\t")[2])
              for l in out.read_text().strip().splitlines()[1:]]
        assert any(w > 1.0 for w in ws)  # raw score / length for identicalish


class TestWriteEdges:
    def test_roundtrip_values(self, tmp_path):
        g = SimilarityGraph.from_edges(
            3, [(0, 1, 0.5), (1, 2, 0.75)], ids=["a", "b", "c"]
        )
        path = tmp_path / "e.tsv"
        n = write_edges_tsv(str(path), g)
        assert n == 2
        rows = path.read_text().strip().splitlines()[1:]
        parsed = {tuple(r.split("\t")[:2]): float(r.split("\t")[2])
                  for r in rows}
        assert parsed == {("a", "b"): 0.5, ("b", "c"): 0.75}

    def test_without_ids(self, tmp_path):
        g = SimilarityGraph.from_edges(2, [(0, 1, 1.0)])
        g.ids = None
        path = tmp_path / "e.tsv"
        write_edges_tsv(str(path), g)
        assert "0\t1\t" in path.read_text()
