"""Tests for the dynamic alignment work stealer
(:func:`repro.core.balance.steal_align`): the trigger decision, the SPMD
chunk/progress/steal/terminate loop, the calibrated cost model that seeds
it, and the distributed pipeline's ``align_balance="steal"`` parity."""

import time
from collections import Counter

import numpy as np
import pytest

from repro.align.batch import AlignmentTask
from repro.core.balance import (
    PROGRESS_TAG,
    STEAL_TAG,
    encode_tasks,
    steal_align,
    steal_decision,
)
from repro.mpisim.comm import run_spmd
from repro.perfmodel.calibrate import calibrate_alignment_model
from repro.perfmodel.costmodel import AlignmentCostModel

_TAG_STATIC = 77  # the distributed pipeline's static-plan rebal tag


def _task(pair, side=10):
    """A synthetic task whose cost under ``_cost_fn`` is ``side ** 2``."""
    return AlignmentTask(
        a=np.zeros(side, dtype=np.int8),
        b=np.zeros(side, dtype=np.int8),
        seeds=((0, 0),),
        pair=pair,
    )


def _cost_fn(tasks):
    return [len(t.a) * len(t.b) for t in tasks]


def _sleep_align_fn(rate, speed=1.0):
    """Fake engine: wall time proportional to cells at ``rate * speed``
    cells/sec — the controlled mis-estimation knob of the straggler
    scenarios (the scheduler believes ``rate``; the rank delivers
    ``rate * speed``)."""

    def align_fn(tasks):
        time.sleep(sum(_cost_fn(tasks)) / (rate * speed))
        return [t.pair for t in tasks]

    return align_fn


class TestStealDecision:
    def test_balanced_fleet_stays_quiet(self):
        assert steal_decision([100, 100, 100, 100], [10] * 4, 0, 1.5) is None

    def test_straggler_sheds_to_idle_soonest(self):
        # rank 0 projects 100s, ranks 1-3 project 10/5/5s -> dest is the
        # minimum projection, lowest rank on ties
        dec = steal_decision([1000, 100, 50, 50], [10] * 4, 0, 1.5)
        assert dec is not None
        dest, target = dec
        assert dest == 2
        # levelling: half the projection gap at the victim's rate
        assert target == pytest.approx((100 - 5) / 2 * 10)

    def test_factor_is_hysteresis(self):
        rem, rates = [300, 100, 100, 100], [10] * 4
        assert steal_decision(rem, rates, 0, 4.0) is None
        assert steal_decision(rem, rates, 0, 1.5) is not None

    def test_non_straggler_never_sheds(self):
        assert steal_decision([1000, 100, 50, 50], [10] * 4, 1, 1.5) is None

    def test_min_cells_guards_endgame_thrash(self):
        rem, rates = [30, 1, 1, 1], [10] * 4
        assert steal_decision(rem, rates, 0, 1.5, min_cells=1000) is None
        assert steal_decision(rem, rates, 0, 1.5, min_cells=10) is not None

    def test_rates_convert_cells_to_time(self):
        # rank 0 holds more cells but is proportionally faster: no steal
        assert steal_decision([1000, 100], [100, 10], 0, 1.5) is None

    def test_finished_rank_never_sheds(self):
        assert steal_decision([0, 100], [10, 10], 0, 1.1) is None

    def test_infinite_factor_disables_stealing(self):
        # even against an all-idle fleet (median 0, where any finite
        # factor triggers) — the straggler benchmark's static baseline
        dec = steal_decision([1000, 0, 0, 0], [10] * 4, 0, float("inf"))
        assert dec is None


class TestTryrecv:
    def test_nonblocking_and_fifo(self):
        def body(comm):
            if comm.rank == 0:
                ok, _ = comm.tryrecv(tag=5)
                empty_first = not ok
                comm.recv(source=1, tag=9)  # rendezvous: both sent
                got = []
                while True:
                    ok, msg = comm.tryrecv(tag=5)
                    if not ok:
                        break
                    got.append(msg)
                return empty_first, got
            comm.send("a", dest=0, tag=5)
            comm.send("b", dest=0, tag=5)
            comm.send("sent", dest=0, tag=9)
            return None

        out = run_spmd(2, body)
        empty_first, got = out[0]
        assert empty_first
        assert got == ["a", "b"]  # per-channel FIFO order


class TestStealAlignSPMD:
    NRANKS = 4
    RATE = 2e5

    def _run(self, speeds, factor, ntasks=16, side=50, nchunks=8):
        total = float(ntasks * side * side)

        def body(comm):
            tasks = [_task((comm.rank, i), side) for i in range(ntasks)]
            aligned, stats = steal_align(
                comm,
                tasks,
                _cost_fn(tasks),
                align_fn=_sleep_align_fn(self.RATE, speeds[comm.rank]),
                cost_fn=_cost_fn,
                initial_remaining=[total] * self.NRANKS,
                rate0=self.RATE,
                factor=factor,
                nchunks=nchunks,
            )
            return [t.pair for t, _ in aligned], stats

        return run_spmd(self.NRANKS, body)

    def _coverage(self, out, ntasks=16):
        counts = Counter(p for pairs, _ in out for p in pairs)
        expect = {(r, i) for r in range(self.NRANKS) for i in range(ntasks)}
        assert set(counts) == expect
        assert all(c == 1 for c in counts.values()), (
            "a task was aligned twice or dropped"
        )

    def test_balanced_fleet_steals_nothing(self):
        out = self._run(speeds=[1.0] * 4, factor=10.0)
        self._coverage(out)
        for pairs, stats in out:
            assert stats["stolen_out"] == 0
            assert stats["stolen_in"] == 0
            assert len(pairs) == 16

    def test_mis_estimated_straggler_sheds(self):
        """Rank 0 secretly runs 5x slower than the cost model's estimate;
        it must detect this from measured progress and shed work, and
        every task must still be aligned exactly once."""
        out = self._run(speeds=[0.2, 1.0, 1.0, 1.0], factor=1.3)
        self._coverage(out)
        assert out[0][1]["stolen_out"] > 0
        assert sum(s["stolen_out"] for _, s in out) == sum(
            s["stolen_in"] for _, s in out
        )
        # the straggler ended with fewer tasks than its static share
        assert len(out[0][0]) < 16

    def test_idle_ranks_absorb_a_loaded_rank(self):
        """All work starts on rank 0 (no static plan correction): the idle
        ranks' zero projections make rank 0 shed immediately."""
        ntasks = 12

        def body(comm):
            tasks = (
                [_task((0, i), 40) for i in range(ntasks)]
                if comm.rank == 0 else []
            )
            remaining = [float(ntasks * 40 * 40), 0.0, 0.0, 0.0]
            aligned, stats = steal_align(
                comm,
                tasks,
                _cost_fn(tasks),
                align_fn=_sleep_align_fn(self.RATE),
                cost_fn=_cost_fn,
                initial_remaining=remaining,
                rate0=self.RATE,
                factor=1.5,
                nchunks=4,
            )
            return [t.pair for t, _ in aligned], stats

        out = run_spmd(self.NRANKS, body)
        counts = Counter(p for pairs, _ in out for p in pairs)
        assert set(counts) == {(0, i) for i in range(ntasks)}
        assert all(c == 1 for c in counts.values())
        assert out[0][1]["stolen_out"] > 0
        assert sum(s["stolen_in"] for _, s in out[1:]) > 0

    def test_stolen_tasks_never_reship(self):
        """Stolen tasks are ineligible at the thief: total hops stay
        bounded, so stolen_in across the fleet equals stolen_out even
        under an aggressive factor."""
        out = self._run(speeds=[0.3, 1.0, 1.0, 1.0], factor=1.05)
        self._coverage(out)
        assert sum(s["stolen_out"] for _, s in out) == sum(
            s["stolen_in"] for _, s in out
        )

    def test_single_rank(self):
        def body(comm):
            tasks = [_task((0, i), 20) for i in range(5)]
            aligned, stats = steal_align(
                comm, tasks, _cost_fn(tasks),
                align_fn=lambda ts: [t.pair for t in ts],
                cost_fn=_cost_fn,
                initial_remaining=[float(5 * 400)],
                rate0=1e6, factor=1.5, nchunks=3,
            )
            return [t.pair for t, _ in aligned], stats

        (pairs, stats), = run_spmd(1, body)
        assert sorted(pairs) == [(0, i) for i in range(5)]
        assert stats["stolen_out"] == stats["stolen_in"] == 0
        assert stats["chunks"] >= 3

    def test_static_incoming_folds_into_queue(self):
        """Pending static-plan payloads land inside the stealing loop and
        their tasks are aligned (and steal-eligible) at the receiver."""
        nship = 3

        def body(comm):
            if comm.rank == 0:
                shipped = [_task((9, i), 30) for i in range(nship)]
                comm.isend(encode_tasks(shipped), dest=1, tag=_TAG_STATIC,
                           kind="rebal")
                tasks, incoming = [_task((0, 0), 30)], None
            else:
                tasks = [_task((1, 0), 30)]
                incoming = {0: comm.irecv(0, tag=_TAG_STATIC)}
            remaining = [900.0, 900.0 * (1 + nship)]
            aligned, stats = steal_align(
                comm, tasks, _cost_fn(tasks),
                align_fn=lambda ts: [t.pair for t in ts],
                cost_fn=_cost_fn,
                initial_remaining=remaining,
                rate0=1e6, factor=10.0, nchunks=2,
                static_incoming=incoming,
            )
            return sorted(t.pair for t, _ in aligned)

        out = run_spmd(2, body)
        assert out[0] == [(0, 0)]
        assert out[1] == [(1, 0)] + [(9, i) for i in range(nship)]

    def test_measured_throughput_reported(self):
        out = self._run(speeds=[1.0] * 4, factor=10.0)
        for _, stats in out:
            assert stats["aligned_cells"] == 16 * 50 * 50
            assert stats["align_seconds"] > 0
            assert stats["measured_cells_per_sec"] == pytest.approx(
                stats["aligned_cells"] / stats["align_seconds"]
            )

    def test_tags_are_distinct(self):
        assert len({STEAL_TAG, PROGRESS_TAG, _TAG_STATIC}) == 3


class TestCalibratedSeed:
    def test_fit_shapes_the_trigger(self):
        """The calibrated model supplies a usable initial rate: projecting
        with it yields finite, positive finish times."""
        model = calibrate_alignment_model(k=4)
        for mode in ("xd", "sw"):
            rate = model.cells_per_sec(mode)
            assert np.isfinite(rate) and rate > 0
            assert model.seconds(1e6, 10, mode) > 0

    def test_dict_roundtrip(self):
        model = calibrate_alignment_model(k=4)
        again = AlignmentCostModel.from_dict(model.as_dict())
        assert again == model

    def test_memoised_per_configuration(self):
        assert calibrate_alignment_model(k=4) is calibrate_alignment_model(
            k=4
        )

    def test_unknown_mode_rejected(self):
        model = AlignmentCostModel(1.0, 1.0)
        with pytest.raises(ValueError):
            model.cells_per_sec("nw")
        with pytest.raises(ValueError):
            model.seconds(1.0, 1, "nw")


class TestDistributedSteal:
    """``align_balance="steal"`` in the full SPMD pipeline (the 1/4/9-grid
    sweep lives in the golden obliviousness test)."""

    @pytest.fixture(scope="class")
    def store(self):
        from repro.bio.generate import scope_like

        return scope_like(
            n_families=3, members_per_family=(3, 3),
            length_range=(40, 60), divergence=0.15, seed=7,
        ).store

    def _edges(self, graph):
        return sorted(
            zip(graph.ri.tolist(), graph.rj.tolist(),
                graph.weights.tolist())
        )

    @pytest.mark.parametrize("mode", ["xd", "sw"])
    def test_byte_identical_to_off(self, store, mode):
        from dataclasses import replace

        from repro.core.config import PastisConfig
        from repro.core.distributed import run_pastis_distributed

        config = PastisConfig(align_mode=mode)
        off = run_pastis_distributed(store, config, nranks=4)
        steal = run_pastis_distributed(
            store, replace(config, align_balance="steal"), nranks=4
        )
        assert self._edges(off) == self._edges(steal)
        assert self._edges(off), "no edges — parity would be vacuous"

    def test_meta_records_the_dynamic_stage(self, store):
        from repro.core.config import PastisConfig
        from repro.core.distributed import run_pastis_distributed

        graph = run_pastis_distributed(
            store, PastisConfig(align_balance="steal"), nranks=4
        )
        meta = graph.meta["align_balance"]
        assert meta["mode"] == "steal"
        assert len(meta["measured_cells_per_sec"]) == 4
        assert len(meta["aligned_cells"]) == 4
        assert sum(meta["aligned_cells"]) == sum(meta["post_cells"])
        assert meta["stolen_tasks"] >= 0
        assert set(meta["calibration"]) == {
            "xd_cells_per_sec", "sw_cells_per_sec",
            "xd_task_overhead", "sw_task_overhead",
        }
        assert all(c >= 1 for c in meta["chunks"] if c)

    def test_config_validation(self):
        from repro.core.config import PastisConfig

        with pytest.raises(ValueError):
            PastisConfig(steal_factor=0.5)
        with pytest.raises(ValueError):
            PastisConfig(steal_chunks=0)
        with pytest.raises(ValueError):
            PastisConfig(align_balance="work-queue")
