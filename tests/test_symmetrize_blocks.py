"""Block-wise symmetrization: the off-diagonal offset contract.

``symmetrize_candidates`` historically computed the AS-side global id of
mirrored entries from the *column* offset, which is only correct for square
diagonal blocks (``row_offset == col_offset``) — the old NOTE admitted as
much.  These tests pin the repaired contract: an off-diagonal block must be
merged against its explicitly supplied mirrored partner block, the helper
must refuse unequal offsets without one, and the block-wise results (object
and struct-record values alike) must tile exactly into the global
single-matrix symmetrization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.overlap import symmetrize_candidates
from repro.core.semirings import (
    CK_DTYPE,
    CommonKmers,
    common_kmers_to_records,
    records_to_common_kmers,
)
from repro.mpisim.grid import block_ranges
from repro.sparse.coo import COOMatrix


def _random_directed_b(n: int, seed: int, nnz: int) -> COOMatrix:
    """A directed candidate matrix: off-diagonal CommonKmers entries, some
    coordinates present in both orientations (including count ties)."""
    rng = np.random.default_rng(seed)
    coords: set[tuple[int, int]] = set()
    while len(coords) < nnz:
        i, j = int(rng.integers(0, n)), int(rng.integers(0, n))
        if i != j:
            coords.add((i, j))
    # force both orientations (and some equal counts) into the mix
    both = list(coords)[: nnz // 3]
    coords.update((j, i) for i, j in both)
    rows, cols, vals = [], [], []
    for i, j in sorted(coords):
        nseeds = int(rng.integers(1, 3))
        seeds = tuple(
            sorted(
                (
                    (int(rng.integers(0, 40)), int(rng.integers(0, 40)),
                     int(rng.integers(0, 3)))
                    for _ in range(nseeds)
                ),
                key=lambda s: (s[2], s[0], s[1]),
            )
        )
        rows.append(i)
        cols.append(j)
        vals.append(CommonKmers(int(rng.integers(1, 4)), seeds))
    v = np.empty(len(vals), dtype=object)
    for t, val in enumerate(vals):
        v[t] = val
    return COOMatrix(n, n, rows, cols, v)


def _block(b: COOMatrix, rr, cr) -> COOMatrix:
    keep = ((b.rows >= rr[0]) & (b.rows < rr[1])
            & (b.cols >= cr[0]) & (b.cols < cr[1]))
    return COOMatrix(rr[1] - rr[0], cr[1] - cr[0], b.rows[keep] - rr[0],
                     b.cols[keep] - cr[0], b.vals[keep])


def _to_struct(b: COOMatrix) -> COOMatrix:
    return COOMatrix(b.nrows, b.ncols, b.rows, b.cols,
                     common_kmers_to_records(list(b.vals)))


def _as_dict(b: COOMatrix) -> dict:
    vals = b.vals
    if vals.dtype == CK_DTYPE:
        vals = records_to_common_kmers(vals)
    return {(int(r), int(c)): v for r, c, v in zip(b.rows, b.cols, vals)}


class TestOffsetContract:
    def test_unequal_offsets_without_mirror_raise(self):
        b = _random_directed_b(6, 0, 8)
        with pytest.raises(ValueError, match="mirror"):
            symmetrize_candidates(b, row_offset=0, col_offset=6)

    def test_rectangular_block_without_mirror_raises(self):
        b = _random_directed_b(6, 1, 8)
        blk = _block(b, (0, 2), (0, 6))
        with pytest.raises(ValueError):
            symmetrize_candidates(blk, 0, 0)

    def test_mirror_shape_mismatch_raises(self):
        b = _random_directed_b(6, 2, 8)
        with pytest.raises(ValueError, match="shape"):
            symmetrize_candidates(b, 0, 0, mirror=_block(b, (0, 3), (0, 6)))


@pytest.mark.parametrize("struct", [False, True], ids=["object", "struct"])
@pytest.mark.parametrize("q", [2, 3])
@pytest.mark.parametrize("seed", range(3))
class TestBlocksTileTheGlobalMerge:
    """Regression for the diagonal-only offset bug: every block of the
    grid — including off-diagonal blocks with unequal row/col offsets and
    uneven block sizes — must reproduce its window of the global merge."""

    def test_blockwise_equals_global(self, struct, q, seed):
        n = 11  # does not divide evenly by q: offsets differ per block
        b = _random_directed_b(n, seed, 14)
        ref = _as_dict(symmetrize_candidates(b))
        ranges = block_ranges(n, q)
        covered = 0
        for pi in range(q):
            for pj in range(q):
                rr, cr = ranges[pi], ranges[pj]
                blk = _block(b, rr, cr)
                # the mirrored partner block, transposed into this block's
                # index space — what DistSparseMatrix.transpose delivers
                mirror = _block(b, cr, rr).transpose()
                if struct:
                    blk, mirror = _to_struct(blk), _to_struct(mirror)
                got = symmetrize_candidates(
                    blk, row_offset=rr[0], col_offset=cr[0], mirror=mirror
                )
                for (r, c), v in _as_dict(got).items():
                    assert ref[(r + rr[0], c + cr[0])] == v
                    covered += 1
        assert covered == len(ref)


class TestForwardWinsTieBreak:
    def _tie_matrix(self) -> COOMatrix:
        # (1, 3) and (3, 1) carry equal counts but different seeds: the
        # forward direction (AS side = smaller global id 1) must win, and
        # the (3, 1) output cell must hold the winner's flipped seeds
        v = np.empty(2, dtype=object)
        v[0] = CommonKmers(2, ((4, 9, 0), (6, 2, 1)))
        v[1] = CommonKmers(2, ((8, 3, 0), (1, 7, 1)))
        return COOMatrix(5, 5, [1, 3], [3, 1], v)

    @pytest.mark.parametrize("struct", [False, True],
                             ids=["object", "struct"])
    def test_forward_direction_wins_count_ties(self, struct):
        b = self._tie_matrix()
        if struct:
            b = _to_struct(b)
        out = _as_dict(symmetrize_candidates(b))
        assert out[(1, 3)] == CommonKmers(2, ((4, 9, 0), (6, 2, 1)))
        assert out[(3, 1)] == CommonKmers(2, ((9, 4, 0), (2, 6, 1)))

    @pytest.mark.parametrize("struct", [False, True],
                             ids=["object", "struct"])
    def test_larger_count_beats_forward(self, struct):
        v = np.empty(2, dtype=object)
        v[0] = CommonKmers(1, ((4, 9, 0),))
        v[1] = CommonKmers(3, ((8, 3, 0),))
        b = COOMatrix(5, 5, [1, 3], [3, 1], v)
        if struct:
            b = _to_struct(b)
        out = _as_dict(symmetrize_candidates(b))
        # the backward direction (3 -> 1) has the larger count: its value
        # lands unflipped at (3, 1) and flipped at (1, 3)
        assert out[(3, 1)] == CommonKmers(3, ((8, 3, 0),))
        assert out[(1, 3)] == CommonKmers(3, ((3, 8, 0),))
