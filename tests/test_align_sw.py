"""Tests for Smith-Waterman with affine gaps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bio.alphabet import PROTEIN_ALPHABET, encode_sequence
from repro.bio.generate import mutate, random_protein
from repro.bio.scoring import BLOSUM45, BLOSUM62
from repro.align.smith_waterman import (
    smith_waterman,
    sw_reference,
    sw_score_only,
)

prot = st.text(alphabet=PROTEIN_ALPHABET[:20], min_size=1, max_size=40)


class TestScore:
    def test_identical_sequences(self):
        a = encode_sequence("AVGDMIKR")
        res = smith_waterman(a, a)
        assert res.score == BLOSUM62.self_score(a)
        assert res.identity == 1.0
        assert res.coverage_short == 1.0
        assert res.alignment_length == len(a)

    def test_no_similarity_zero(self):
        # tryptophans vs prolines score negatively everywhere
        a = encode_sequence("WWWW")
        b = encode_sequence("PPPP")
        res = smith_waterman(a, b)
        assert res.score == 0
        assert res.alignment_length == 0

    def test_empty_input(self):
        a = encode_sequence("AVG")
        res = smith_waterman(a, np.empty(0, dtype=np.int8))
        assert res.score == 0

    def test_known_simple_alignment(self):
        # AVG vs AVG embedded in junk: local alignment finds the island
        a = encode_sequence("AVGDMI")
        b = encode_sequence("PPPAVGDMIPPP")
        res = smith_waterman(a, b)
        assert res.score == BLOSUM62.self_score(a)
        assert res.b_start == 3
        assert res.b_end == 9

    def test_gap_cost_affine(self):
        # one gap of length 2 costs open + 2*extend, not 2*(open+extend)
        a = encode_sequence("AVGDMIKRW")
        b = encode_sequence("AVGMIKRW")  # D deleted... 1 gap
        res = smith_waterman(a, b, gap_open=5, gap_extend=1)
        expected = BLOSUM62.self_score(encode_sequence("AVGMIKRW")) - 6
        assert res.score == expected

    def test_swap_symmetric_score(self):
        a = encode_sequence(random_protein(30, 0))
        b = encode_sequence(random_protein(35, 1))
        assert smith_waterman(a, b).score == smith_waterman(b, a).score

    def test_score_only_equals_traceback_score(self):
        a = encode_sequence(random_protein(40, 2))
        b = encode_sequence(mutate(random_protein(40, 2), 0.3, 0.05, 3))
        assert sw_score_only(a, b) == smith_waterman(a, b).score

    def test_alternative_matrix(self):
        a = encode_sequence("AVGDMI")
        r62 = smith_waterman(a, a, BLOSUM62)
        r45 = smith_waterman(a, a, BLOSUM45)
        assert r45.score == BLOSUM45.self_score(a)
        assert r62.score != r45.score

    @settings(max_examples=60, deadline=None)
    @given(prot, prot)
    def test_property_matches_reference(self, sa, sb):
        a, b = encode_sequence(sa), encode_sequence(sb)
        assert sw_score_only(a, b) == sw_reference(a, b)

    @settings(max_examples=30, deadline=None)
    @given(prot, prot, st.integers(2, 15), st.integers(1, 4))
    def test_property_reference_with_gap_params(self, sa, sb, go, ge):
        a, b = encode_sequence(sa), encode_sequence(sb)
        assert (
            sw_score_only(a, b, gap_open=go, gap_extend=ge)
            == sw_reference(a, b, gap_open=go, gap_extend=ge)
        )


class TestTraceback:
    def test_identity_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = encode_sequence(random_protein(50, rng))
            b = encode_sequence(random_protein(50, rng))
            res = smith_waterman(a, b)
            assert 0.0 <= res.identity <= 1.0
            assert 0.0 <= res.coverage_short <= 1.0

    def test_spans_consistent(self):
        a = encode_sequence(random_protein(60, 4))
        b = encode_sequence(mutate(random_protein(60, 4), 0.2, 0.0, 5))
        res = smith_waterman(a, b)
        assert 0 <= res.a_start <= res.a_end <= len(a)
        assert 0 <= res.b_start <= res.b_end <= len(b)
        assert res.alignment_length >= max(
            res.a_end - res.a_start, res.b_end - res.b_start
        ) - 0  # gaps only lengthen the alignment

    def test_matches_le_length(self):
        a = encode_sequence(random_protein(40, 6))
        b = encode_sequence(mutate(random_protein(40, 6), 0.3, 0.05, 7))
        res = smith_waterman(a, b)
        assert res.matches <= res.alignment_length

    def test_related_pair_high_identity(self):
        s = random_protein(120, 8)
        a = encode_sequence(s)
        b = encode_sequence(mutate(s, 0.05, 0.0, 9))
        res = smith_waterman(a, b)
        assert res.identity > 0.85
        assert res.coverage_short > 0.95

    def test_no_traceback_flag(self):
        a = encode_sequence("AVGDMI")
        res = smith_waterman(a, a, traceback=False)
        assert res.score == BLOSUM62.self_score(a)
        assert res.matches == 0
        assert res.alignment_length == 0
