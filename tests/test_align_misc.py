"""Tests for ungapped extension, alignment stats, and the batch driver."""

import numpy as np
import pytest

from repro.bio.alphabet import encode_sequence
from repro.bio.generate import mutate, random_protein
from repro.bio.scoring import BLOSUM62
from repro.align.batch import AlignmentTask, align_batch, align_pair
from repro.align.stats import AlignmentResult, normalized_score, passes_filter
from repro.align.ungapped import ungapped_align, ungapped_extend


class TestUngapped:
    def test_identical(self):
        a = encode_sequence("AVGDMI")
        score, length, matches = ungapped_extend(a, a, 20)
        assert score == BLOSUM62.self_score(a)
        assert length == len(a)
        assert matches == len(a)

    def test_empty(self):
        assert ungapped_extend(np.empty(0, dtype=np.int8),
                               encode_sequence("A"), 20) == (0, 0, 0)

    def test_xdrop_cuts_extension(self):
        a = encode_sequence("AVGDMI" + "W" * 20)
        b = encode_sequence("AVGDMI" + "P" * 20)
        score, length, _ = ungapped_extend(a, b, xdrop=8)
        assert length <= 8
        assert score == BLOSUM62.self_score(encode_sequence("AVGDMI"))

    def test_negative_start_returns_zero(self):
        a = encode_sequence("W")
        b = encode_sequence("P")
        assert ungapped_extend(a, b, 5) == (0, 0, 0)

    def test_align_spans_same_diagonal(self):
        s = random_protein(50, 0)
        a = encode_sequence(s)
        res = ungapped_align(a, a, 10, 10, 4)
        assert res.a_start == res.b_start
        assert res.a_end == res.b_end
        assert res.identity == 1.0

    def test_align_seed_bounds(self):
        a = encode_sequence("AVGDMI")
        with pytest.raises(ValueError):
            ungapped_align(a, a, 4, 0, 4)


class TestStats:
    def _result(self, **kw):
        base = dict(score=100, a_start=0, a_end=50, b_start=0, b_end=50,
                    matches=40, alignment_length=50, len_a=60, len_b=50,
                    mode="sw")
        base.update(kw)
        return AlignmentResult(**base)

    def test_identity(self):
        assert self._result().identity == 0.8
        assert self._result(alignment_length=0, matches=0).identity == 0.0

    def test_coverage_short(self):
        r = self._result()
        assert r.coverage_short == 1.0  # 50 aligned of shorter length 50
        r2 = self._result(a_end=25, b_end=25, alignment_length=25)
        assert r2.coverage_short == 0.5

    def test_normalized_score(self):
        assert self._result().normalized_score == 2.0
        assert normalized_score(10, 0, 5) == 0.0

    def test_swap(self):
        r = self._result(a_start=1, a_end=2, b_start=3, b_end=4)
        s = r.swap()
        assert (s.a_start, s.a_end) == (3, 4)
        assert (s.b_start, s.b_end) == (1, 2)
        assert s.len_a == r.len_b

    def test_passes_filter_thresholds(self):
        good = self._result()  # identity .8, coverage 1.0
        assert passes_filter(good)
        low_id = self._result(matches=10)  # identity .2
        assert not passes_filter(low_id)
        low_cov = self._result(a_end=20, b_end=20)
        assert not passes_filter(low_cov)

    def test_passes_filter_custom_thresholds(self):
        r = self._result(matches=20)  # identity .4
        assert passes_filter(r, min_identity=0.35)
        assert not passes_filter(r, min_identity=0.5)


class TestBatch:
    def _tasks(self, n=6, seed=0):
        rng = np.random.default_rng(seed)
        tasks = []
        for i in range(n):
            s = random_protein(40, rng)
            a = encode_sequence(s)
            b = encode_sequence(mutate(s, 0.1, 0.0, rng))
            tasks.append(AlignmentTask(a=a, b=b, seeds=((0, 0),),
                                       pair=(i, i + 100)))
        return tasks

    def test_sw_mode_ignores_seeds(self):
        t = AlignmentTask(
            a=encode_sequence("AVGDMI"), b=encode_sequence("AVGDMI"),
            seeds=(),
        )
        res = align_pair(t, "sw", k=3)
        assert res.score == BLOSUM62.self_score(t.a)

    def test_xd_requires_seed(self):
        t = AlignmentTask(
            a=encode_sequence("AVGDMI"), b=encode_sequence("AVGDMI"),
            seeds=(),
        )
        with pytest.raises(ValueError):
            align_pair(t, "xd", k=3)

    def test_xd_takes_best_of_two_seeds(self):
        s = random_protein(60, 3)
        a = encode_sequence(s)
        t2 = AlignmentTask(a=a, b=a, seeds=((50, 2), (10, 10)))
        res = align_pair(t2, "xd", k=4)
        t1 = AlignmentTask(a=a, b=a, seeds=((10, 10),))
        best = align_pair(t1, "xd", k=4)
        assert res.score >= best.score

    def test_unknown_mode(self):
        t = AlignmentTask(a=encode_sequence("AV"), b=encode_sequence("AV"),
                          seeds=((0, 0),))
        with pytest.raises(ValueError):
            align_pair(t, "banded", k=1)

    def test_batch_preserves_order(self):
        tasks = self._tasks()
        out = align_batch(tasks, "sw", k=3)
        assert len(out) == len(tasks)
        for t, r in zip(tasks, out):
            assert r.len_a == len(t.a)

    def test_batch_threads_same_results(self):
        # threads only apply to the per-pair reference engine
        tasks = self._tasks(8)
        seq = align_batch(tasks, "sw", k=3, threads=1, engine="python")
        par = align_batch(tasks, "sw", k=3, threads=4, engine="python")
        assert [r.score for r in seq] == [r.score for r in par]

    def test_batch_xd_mode(self):
        tasks = self._tasks(4, seed=5)
        out = align_batch(tasks, "xd", k=3)
        assert all(r.mode == "xd" for r in out)

    def test_threads_with_batched_engine_warns(self):
        """``threads`` only applies to the python engine; passing it with
        the batched engine warns (and is ignored), instead of silently
        suggesting parallelism that never happens."""
        tasks = self._tasks(4, seed=6)
        with pytest.warns(UserWarning, match="'python' engine"):
            warned = align_batch(tasks, "sw", k=3, threads=4,
                                 engine="batched")
        assert warned == align_batch(tasks, "sw", k=3, engine="batched")

    def test_no_warning_on_default_threads(self):
        import warnings

        tasks = self._tasks(3, seed=7)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            align_batch(tasks, "sw", k=3, engine="batched")
            align_batch(tasks, "sw", k=3, threads=4, engine="python")
