"""Tests for the single-process pipeline and the similarity graph."""

import numpy as np
import pytest

from repro.bio.generate import scope_like
from repro.bio.sequences import SequenceStore
from repro.core.config import PastisConfig
from repro.core.graph import SimilarityGraph
from repro.core.pipeline import pastis_pipeline


class TestSimilarityGraph:
    def test_from_edges_normalises(self):
        g = SimilarityGraph.from_edges(5, [(3, 1, 0.5), (0, 2, 0.9)])
        assert g.edge_set() == {(1, 3), (0, 2)}

    def test_from_edges_dedupes_keeping_max(self):
        g = SimilarityGraph.from_edges(4, [(0, 1, 0.5), (1, 0, 0.8)])
        assert g.nedges == 1
        assert g.weights[0] == 0.8

    def test_empty(self):
        g = SimilarityGraph.from_edges(3, [])
        assert g.nedges == 0
        assert g.degrees().tolist() == [0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SimilarityGraph(3, np.array([1]), np.array([1]), np.array([1.0]))
        with pytest.raises(ValueError):
            SimilarityGraph(3, np.array([0]), np.array([5]), np.array([1.0]))

    def test_to_scipy_symmetric(self):
        g = SimilarityGraph.from_edges(3, [(0, 1, 0.5)])
        m = g.to_scipy()
        assert m[0, 1] == 0.5
        assert m[1, 0] == 0.5
        assert m.shape == (3, 3)

    def test_to_networkx(self):
        g = SimilarityGraph.from_edges(4, [(0, 1, 0.5), (1, 2, 0.7)])
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 2
        assert nxg[0][1]["weight"] == 0.5

    def test_degrees(self):
        g = SimilarityGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0)])
        assert g.degrees().tolist() == [1, 2, 1, 0]


class TestPipeline:
    @pytest.fixture(scope="class")
    def data(self):
        return scope_like(
            n_families=4, members_per_family=(3, 4),
            length_range=(50, 80), divergence=0.15, seed=21,
        )

    def test_finds_family_edges(self, data):
        g = pastis_pipeline(data.store, PastisConfig(k=4, substitutes=0))
        # most edges connect same-family sequences at this divergence
        same = sum(
            data.labels[i] == data.labels[j] for i, j in g.edge_set()
        )
        assert g.nedges > 0
        assert same / g.nedges > 0.9

    def test_ani_weights_in_unit_interval(self, data):
        g = pastis_pipeline(data.store, PastisConfig(k=4, weight="ani"))
        assert (g.weights > 0).all()
        assert (g.weights <= 1.0).all()
        # the filter guarantees >= 30 % identity
        assert (g.weights >= 0.30).all()

    def test_ns_mode_no_filter(self, data):
        cfg_ani = PastisConfig(k=4, weight="ani")
        cfg_ns = PastisConfig(k=4, weight="ns")
        g_ani = pastis_pipeline(data.store, cfg_ani)
        g_ns = pastis_pipeline(data.store, cfg_ns)
        # NS applies no veto, so it keeps at least as many edges
        assert g_ns.nedges >= g_ani.nedges

    def test_sw_vs_xd_edges_similar(self, data):
        g_sw = pastis_pipeline(data.store, PastisConfig(k=4, align_mode="sw"))
        g_xd = pastis_pipeline(data.store, PastisConfig(k=4, align_mode="xd"))
        inter = len(g_sw.edge_set() & g_xd.edge_set())
        union = len(g_sw.edge_set() | g_xd.edge_set())
        assert inter / union > 0.8

    def test_ck_reduces_alignments(self, data):
        g = pastis_pipeline(data.store, PastisConfig(k=4))
        g_ck = pastis_pipeline(data.store, PastisConfig(k=4).default_ck())
        assert g_ck.meta["aligned_pairs"] <= g.meta["aligned_pairs"]

    def test_meta_recorded(self, data):
        g = pastis_pipeline(data.store, PastisConfig(k=4))
        assert g.meta["variant"] == "PASTIS-XD-s0"
        assert g.meta["aligned_pairs"] >= g.nedges
        assert g.meta["overlap_seconds"] >= 0
        assert g.meta["align_seconds"] >= 0

    def test_ids_propagated(self, data):
        g = pastis_pipeline(data.store, PastisConfig(k=4))
        assert g.ids == data.store.ids

    def test_no_edges_for_unrelated(self):
        store = SequenceStore(
            ["AVGDMIKRW" * 5, "PPPPPPPPP" * 5, "YYYYWWWWH" * 5]
        )
        g = pastis_pipeline(store, PastisConfig(k=4))
        assert g.nedges == 0

    @pytest.mark.parametrize("weight,expect_traceback",
                             [("ani", True), ("ns", False)])
    def test_traceback_only_paid_when_consumed(self, data, monkeypatch,
                                               weight, expect_traceback):
        """Regression: NS weighting (no filter) must run score-only — the
        whole point of NS is that no traceback is needed (Section VI-B)."""
        import repro.core.pipeline as pl

        seen = []
        real = pl.align_batch

        def recording(tasks, *args, **kwargs):
            seen.append(kwargs["traceback"])
            return real(tasks, *args, **kwargs)

        monkeypatch.setattr(pl, "align_batch", recording)
        pastis_pipeline(data.store, PastisConfig(k=4, weight=weight))
        assert seen == [expect_traceback]

    def test_substitutes_never_lose_edges(self, data):
        g0 = pastis_pipeline(data.store, PastisConfig(k=5, substitutes=0))
        g5 = pastis_pipeline(data.store, PastisConfig(k=5, substitutes=5))
        # substitute k-mers only add candidate pairs; the aligner/filter is
        # unchanged, so the edge set can only grow
        assert g0.edge_set() <= g5.edge_set()
